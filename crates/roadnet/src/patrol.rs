//! Covering patrol cycles (Theorem 4).
//!
//! For the odd-traffic-pattern extension, the paper resorts to police patrol
//! cars driving a fixed closed walk that visits every checkpoint at least
//! once; each patrol car relays checkpoint statuses so that every inbound
//! counter eventually receives its stop condition (Theorem 3). Theorem 4
//! shows such a cycle exists in any (strongly) connected closed road system,
//! though not necessarily a Hamiltonian one — checkpoints may be visited
//! multiple times.
//!
//! Construction here: visit nodes in DFS preorder and stitch consecutive
//! visits (and the return to the start) with shortest paths. The result is a
//! closed directed walk covering all nodes with length at most
//! `n * diameter`.

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use crate::routing::shortest_path;

/// A closed directed walk that visits every intersection at least once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatrolCycle {
    /// Starting (and ending) intersection.
    pub start: NodeId,
    /// Edges of the closed walk in driving order.
    pub edges: Vec<EdgeId>,
}

impl PatrolCycle {
    /// Total driving length of one lap, metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|e| net.edge(*e).length_m).sum()
    }

    /// Free-flow time of one lap, seconds.
    pub fn lap_time_s(&self, net: &RoadNetwork) -> f64 {
        self.edges
            .iter()
            .map(|e| net.edge(*e).travel_time_s())
            .sum()
    }

    /// Node visit sequence (length = edges + 1; first == last == start).
    pub fn node_sequence(&self, net: &RoadNetwork) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.edges.len() + 1);
        seq.push(self.start);
        for e in &self.edges {
            seq.push(net.edge(*e).to);
        }
        seq
    }

    /// Checks the covering-cycle invariants: contiguity, closure, and full
    /// node coverage. Used by tests and by debug assertions downstream.
    pub fn verify(&self, net: &RoadNetwork) -> Result<(), String> {
        let mut at = self.start;
        let mut covered = vec![false; net.node_count()];
        covered[self.start.index()] = true;
        for e in &self.edges {
            let edge = net.edge(*e);
            if edge.from != at {
                return Err(format!("edge {e} does not start at {at}"));
            }
            at = edge.to;
            covered[at.index()] = true;
        }
        if at != self.start {
            return Err(format!("walk ends at {at}, not at start {}", self.start));
        }
        if let Some(missing) = covered.iter().position(|c| !c) {
            return Err(format!("node n{missing} is never visited"));
        }
        Ok(())
    }

    /// Evenly spaced starting offsets (in edge index) for `k` patrol cars
    /// sharing the cycle ("every police car will evenly be distributed").
    ///
    /// With more cars than edges (`k > edges.len()`) the offsets wrap
    /// around the cycle round-robin, so the per-offset load differs by at
    /// most one car; the naive `i * len / k` would stack several cars at
    /// offset 0 (and other duplicates) while leaving positions empty.
    pub fn even_offsets(&self, k: usize) -> Vec<usize> {
        if self.edges.is_empty() || k == 0 {
            return vec![0; k];
        }
        let len = self.edges.len();
        if k <= len {
            (0..k).map(|i| i * len / k).collect()
        } else {
            (0..k).map(|i| i % len).collect()
        }
    }
}

/// Builds a covering patrol cycle starting at `start`. Returns `None` when
/// the network is not strongly connected (Theorem 4's precondition fails).
pub fn covering_cycle(net: &RoadNetwork, start: NodeId) -> Option<PatrolCycle> {
    if net.node_count() == 0 {
        return None;
    }
    // DFS preorder over the directed graph.
    let mut order = Vec::with_capacity(net.node_count());
    let mut seen = vec![false; net.node_count()];
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        for &e in net.out_edges(v) {
            let w = net.edge(e).to;
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    if order.len() != net.node_count() {
        return None; // not all nodes reachable from start
    }

    let mut edges = Vec::new();
    for w in order.windows(2) {
        let p = shortest_path(net, w[0], w[1])?;
        edges.extend(p.edges);
    }
    let back = shortest_path(net, *order.last().unwrap(), start)?;
    edges.extend(back.edges);

    // Degenerate single-node "network" cannot form a closed walk with edges;
    // callers treat an empty cycle as "already everywhere".
    let cycle = PatrolCycle { start, edges };
    debug_assert!(cycle.verify(net).is_ok());
    Some(cycle)
}

/// Builds a closed walk covering every *directed edge* at least once
/// (a relaxed Chinese-postman tour). Patrol cars driving this cycle act as
/// label carriers on every direction, so even an "orphan" direction that no
/// civilian vehicle ever uses (the deadlock of Section IV-B) receives its
/// stop signal. Returns `None` when the network is not strongly connected.
///
/// Greedy construction: from the current node, take an unvisited outbound
/// edge when one exists, otherwise drive the shortest path to the nearest
/// node that still has one; finally return to the start.
pub fn edge_covering_cycle(net: &RoadNetwork, start: NodeId) -> Option<PatrolCycle> {
    if net.node_count() == 0 || !crate::connectivity::is_strongly_connected(net) {
        return None;
    }
    let mut visited = vec![false; net.edge_count()];
    let mut remaining = net.edge_count();
    let mut edges = Vec::with_capacity(net.edge_count() * 2);
    let mut at = start;
    while remaining > 0 {
        if let Some(&e) = net.out_edges(at).iter().find(|e| !visited[e.index()]) {
            visited[e.index()] = true;
            remaining -= 1;
            edges.push(e);
            at = net.edge(e).to;
            continue;
        }
        // Drive toward the nearest node with an unvisited outbound edge.
        let times = crate::routing::travel_times_from(net, at);
        let target = net
            .node_ids()
            .filter(|n| net.out_edges(*n).iter().any(|e| !visited[e.index()]))
            .min_by(|a, b| times[a.index()].partial_cmp(&times[b.index()]).unwrap())?;
        let p = shortest_path(net, at, target)?;
        for e in &p.edges {
            if !visited[e.index()] {
                visited[e.index()] = true;
                remaining -= 1;
            }
        }
        at = target;
        edges.extend(p.edges);
    }
    let back = shortest_path(net, at, start)?;
    edges.extend(back.edges);
    let cycle = PatrolCycle { start, edges };
    debug_assert!(cycle.verify(net).is_ok());
    Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{directed_ring, grid, random_city, RandomCityConfig};

    #[test]
    fn grid_cycle_covers_everything() {
        let net = grid(5, 4, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(0)).unwrap();
        cycle.verify(&net).unwrap();
        assert!(cycle.lap_time_s(&net) > 0.0);
    }

    #[test]
    fn directed_ring_cycle_is_hamiltonian() {
        let net = directed_ring(7, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(0)).unwrap();
        cycle.verify(&net).unwrap();
        // On a one-way ring the only closed covering walk is laps of the
        // ring itself; DFS+stitching finds exactly one lap.
        assert_eq!(cycle.edges.len(), 7);
    }

    #[test]
    fn cycle_from_any_start() {
        let net = grid(4, 4, 100.0, 1, 5.0);
        for s in net.node_ids() {
            let cycle = covering_cycle(&net, s).unwrap();
            cycle.verify(&net).unwrap();
            assert_eq!(cycle.start, s);
        }
    }

    #[test]
    fn not_strongly_connected_returns_none() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(crate::geometry::Point::new(0.0, 0.0));
        let b = net.add_node(crate::geometry::Point::new(10.0, 0.0));
        net.add_one_way(a, b, 1, 5.0);
        assert!(covering_cycle(&net, a).is_none());
    }

    #[test]
    fn random_cities_always_admit_cycles() {
        for seed in 0..10 {
            let net = random_city(&RandomCityConfig {
                seed,
                nodes: 30,
                ..Default::default()
            });
            let cycle = covering_cycle(&net, NodeId(0)).unwrap();
            cycle.verify(&net).unwrap();
        }
    }

    #[test]
    fn even_offsets_are_spread() {
        let net = grid(4, 4, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(0)).unwrap();
        let offs = cycle.even_offsets(4);
        assert_eq!(offs.len(), 4);
        assert_eq!(offs[0], 0);
        for w in offs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(*offs.last().unwrap() < cycle.edges.len());
    }

    #[test]
    fn even_offsets_with_more_cars_than_edges_balance_load() {
        // Regression: with k > len the old `i * len / k` computed duplicate
        // offsets (several cars at 0) while leaving positions unused.
        let net = directed_ring(5, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(0)).unwrap();
        let len = cycle.edges.len();
        assert_eq!(len, 5);
        for k in [len + 1, 2 * len, 2 * len + 3] {
            let offs = cycle.even_offsets(k);
            assert_eq!(offs.len(), k);
            let mut load = vec![0usize; len];
            for o in &offs {
                assert!(*o < len, "offset {o} out of range for {len} edges");
                load[*o] += 1;
            }
            let (min, max) = (*load.iter().min().unwrap(), *load.iter().max().unwrap());
            assert!(min >= 1, "k={k}: some cycle position left empty");
            assert!(max - min <= 1, "k={k}: uneven load {load:?}");
        }
    }

    #[test]
    fn even_offsets_at_len_plus_one_stay_unique_modulo_wrap() {
        let net = directed_ring(7, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(0)).unwrap();
        let len = cycle.edges.len();
        let offs = cycle.even_offsets(len + 1);
        // Exactly one offset is doubled (the wraparound car); the rest are
        // distinct.
        let unique: std::collections::BTreeSet<_> = offs.iter().collect();
        assert_eq!(unique.len(), len);
        // k == len remains the identity spread.
        assert_eq!(cycle.even_offsets(len), (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn edge_cycle_covers_every_direction() {
        let net = grid(4, 3, 100.0, 1, 5.0);
        let cycle = edge_covering_cycle(&net, NodeId(0)).unwrap();
        cycle.verify(&net).unwrap();
        let mut covered = vec![false; net.edge_count()];
        for e in &cycle.edges {
            covered[e.index()] = true;
        }
        assert!(covered.iter().all(|c| *c), "every directed edge visited");
    }

    #[test]
    fn edge_cycle_on_random_mixed_maps() {
        for seed in 0..6 {
            let net = random_city(&RandomCityConfig {
                seed,
                nodes: 20,
                one_way_fraction: 0.5,
                ..Default::default()
            });
            let cycle = edge_covering_cycle(&net, NodeId(0)).unwrap();
            cycle.verify(&net).unwrap();
            let covered: std::collections::BTreeSet<_> = cycle.edges.iter().collect();
            assert_eq!(covered.len(), net.edge_count());
        }
    }

    #[test]
    fn edge_cycle_none_when_not_strong() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(crate::geometry::Point::new(0.0, 0.0));
        let b = net.add_node(crate::geometry::Point::new(10.0, 0.0));
        net.add_one_way(a, b, 1, 5.0);
        assert!(edge_covering_cycle(&net, a).is_none());
    }

    #[test]
    fn node_sequence_closes() {
        let net = grid(3, 3, 100.0, 1, 5.0);
        let cycle = covering_cycle(&net, NodeId(4)).unwrap();
        let seq = cycle.node_sequence(&net);
        assert_eq!(seq.first(), seq.last());
        let unique: std::collections::BTreeSet<_> = seq.iter().collect();
        assert_eq!(unique.len(), net.node_count());
    }
}
