//! # vcount-roadnet — road-network substrate
//!
//! Directed road graphs, map builders, routing and covering patrol cycles
//! for the infrastructure-less vehicle-counting reproduction (Wu, Sabatino,
//! Tsan, Jiang — ICPP 2014).
//!
//! The paper's evaluation runs on an OpenStreetMap extract of midtown
//! Manhattan; this crate provides the structural substitute: a synthetic
//! midtown grid ([`builders::manhattan`]) plus regular and random maps used
//! by tests and ablations. See the workspace `DESIGN.md` for the
//! substitution rationale.
//!
//! Terminology follows the paper's Table I:
//!
//! * checkpoint / intersection `u` → [`graph::NodeId`]
//! * road segment `{u, v}` → a twin pair of directed [`graph::Edge`]s
//!   (one-way streets have no twin)
//! * `no(u)`, `ni(u)` → [`graph::RoadNetwork::outbound_neighbors`] /
//!   [`graph::RoadNetwork::inbound_neighbors`]
//! * border *interaction* (Definition 2) → [`graph::Interaction`]
//! * patrol cycle (Theorem 4) → [`patrol::PatrolCycle`]

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builders;
pub mod connectivity;
pub mod geometry;
pub mod graph;
pub mod patrol;
pub mod routing;

pub use geometry::{mph_to_mps, mps_to_mph, Bounds, Point};
pub use graph::{Edge, EdgeId, Interaction, NetError, Node, NodeId, NodeKind, RoadNetwork};
pub use patrol::{covering_cycle, edge_covering_cycle, PatrolCycle};
pub use routing::{random_turn, shortest_path, travel_time_diameter, travel_times_from, Path};
