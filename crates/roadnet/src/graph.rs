//! The road network: a directed multigraph of intersections and road
//! segments, mirroring the paper's notation.
//!
//! * An intersection (checkpoint site) `u` is a [`Node`].
//! * A road segment `{u, v}` is one [`Edge`] per driving direction; a
//!   bidirectional segment is a pair of *twin* edges, a one-way street is an
//!   edge without a twin (Section IV-B, "Extension for counting along
//!   one-way streets").
//! * `no(u)` / `ni(u)` — the outbound / inbound neighbour sets of Table I —
//!   are [`RoadNetwork::outbound_neighbors`] and
//!   [`RoadNetwork::inbound_neighbors`].
//! * Open-system *interaction* flows (Definition 2) are per-node
//!   [`Interaction`] flags marking where traffic crosses the region border.

use crate::geometry::{Bounds, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an intersection (checkpoint site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one *directed* driving direction of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's index into dense per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Intersection kind. Roundabouts are surveilled as a single multi-target
/// checkpoint (Section IV-B, "Extension to multi-target tracking").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NodeKind {
    /// Ordinary signalised or uncontrolled intersection.
    #[default]
    Plain,
    /// A roundabout; `radius_m` only affects traversal time.
    Roundabout {
        /// Roundabout radius in metres.
        radius_m: f64,
    },
}

/// An intersection of the road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier (also the dense index).
    pub id: NodeId,
    /// Location in the local plane.
    pub pos: Point,
    /// Intersection kind.
    pub kind: NodeKind,
}

/// One driving direction of a road segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Stable identifier (also the dense index).
    pub id: EdgeId,
    /// Tail intersection (traffic flows `from -> to`).
    pub from: NodeId,
    /// Head intersection.
    pub to: NodeId,
    /// Driving length in metres.
    pub length_m: f64,
    /// Number of lanes in this direction (≥ 1). More than one lane permits
    /// overtaking in the extended road model.
    pub lanes: u8,
    /// Speed limit in metres per second.
    pub speed_mps: f64,
    /// The opposite driving direction of the same physical segment, if the
    /// segment is bidirectional. `None` marks a one-way street.
    pub twin: Option<EdgeId>,
}

impl Edge {
    /// Free-flow traversal time in seconds.
    pub fn travel_time_s(&self) -> f64 {
        self.length_m / self.speed_mps
    }

    /// Whether this direction belongs to a one-way street.
    pub fn is_one_way(&self) -> bool {
        self.twin.is_none()
    }
}

/// Border interaction flags of a node (Definition 2): which exogenous flows
/// cross the region border at this intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Interaction {
    /// Vehicles may enter the region from outside at this node.
    pub inbound: bool,
    /// Vehicles may leave the region to the outside at this node.
    pub outbound: bool,
}

impl Interaction {
    /// True when either flow direction crosses the border here.
    pub fn any(&self) -> bool {
        self.inbound || self.outbound
    }
}

/// Errors surfaced by [`RoadNetwork::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The network has no intersections.
    Empty,
    /// An edge refers to a node id outside the network.
    DanglingEdge(EdgeId),
    /// An edge has a non-positive length or speed.
    BadEdgeMetric(EdgeId),
    /// A twin pair is inconsistent (wrong endpoints or non-mutual).
    BadTwin(EdgeId),
    /// An edge is a self loop, which the road model forbids.
    SelfLoop(EdgeId),
    /// The network is not strongly connected, so neither the counting wave
    /// nor a covering patrol cycle (Theorem 4) can reach every checkpoint.
    NotStronglyConnected {
        /// Number of strongly connected components found.
        components: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Empty => write!(f, "road network has no intersections"),
            NetError::DanglingEdge(e) => write!(f, "edge {e} references a missing node"),
            NetError::BadEdgeMetric(e) => {
                write!(f, "edge {e} has non-positive length or speed")
            }
            NetError::BadTwin(e) => write!(f, "edge {e} has an inconsistent twin"),
            NetError::SelfLoop(e) => write!(f, "edge {e} is a self loop"),
            NetError::NotStronglyConnected { components } => write!(
                f,
                "road network is not strongly connected ({components} components)"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// A directed road network of intersections and segment directions.
///
/// Node and edge ids are dense indices, so per-node and per-edge protocol
/// state downstream lives in plain `Vec`s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
    interactions: Vec<Interaction>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a plain intersection at `pos`.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        self.add_node_kind(pos, NodeKind::Plain)
    }

    /// Adds an intersection of the given kind at `pos`.
    pub fn add_node_kind(&mut self, pos: Point, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, pos, kind });
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.interactions.push(Interaction::default());
        id
    }

    /// Adds a one-way segment direction `from -> to` with geometric length.
    pub fn add_one_way(&mut self, from: NodeId, to: NodeId, lanes: u8, speed_mps: f64) -> EdgeId {
        let length = self.nodes[from.index()]
            .pos
            .distance(&self.nodes[to.index()].pos);
        self.add_one_way_with_length(from, to, length, lanes, speed_mps)
    }

    /// Adds a one-way segment direction with an explicit driving length
    /// (e.g. a curved street longer than the crow-fly distance).
    pub fn add_one_way_with_length(
        &mut self,
        from: NodeId,
        to: NodeId,
        length_m: f64,
        lanes: u8,
        speed_mps: f64,
    ) -> EdgeId {
        assert!(from != to, "self loops are not valid road segments");
        assert!(lanes >= 1, "a driving direction needs at least one lane");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            from,
            to,
            length_m,
            lanes,
            speed_mps,
            twin: None,
        });
        self.out[from.index()].push(id);
        self.inc[to.index()].push(id);
        id
    }

    /// Adds both directions of a bidirectional segment and links them as
    /// twins. Returns `(a_to_b, b_to_a)`.
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        lanes: u8,
        speed_mps: f64,
    ) -> (EdgeId, EdgeId) {
        let ab = self.add_one_way(a, b, lanes, speed_mps);
        let ba = self.add_one_way(b, a, lanes, speed_mps);
        self.edges[ab.index()].twin = Some(ba);
        self.edges[ba.index()].twin = Some(ab);
        (ab, ba)
    }

    /// Upgrades a one-way edge to a bidirectional segment by adding the
    /// reverse direction; no-op when a twin already exists. Returns the
    /// reverse edge. (Used by the strong-connectivity repair pass, and
    /// mirroring the real-world "return of the two-way street" the paper
    /// cites as ref \[10\].)
    pub fn twin_edge(&mut self, e: EdgeId) -> EdgeId {
        if let Some(t) = self.edges[e.index()].twin {
            return t;
        }
        let (from, to, length, lanes, speed) = {
            let ed = &self.edges[e.index()];
            (ed.from, ed.to, ed.length_m, ed.lanes, ed.speed_mps)
        };
        let rev = self.add_one_way_with_length(to, from, length, lanes, speed);
        self.edges[e.index()].twin = Some(rev);
        self.edges[rev.index()].twin = Some(e);
        rev
    }

    /// Re-tags an intersection's kind (e.g. marking a roundabout after grid
    /// construction).
    pub fn set_node_kind(&mut self, node: NodeId, kind: NodeKind) {
        self.nodes[node.index()].kind = kind;
    }

    /// Number of intersections.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed segment directions.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All intersections.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All directed edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Looks up an intersection.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a directed edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Directed edges leaving `u` (the outbound traffic directions `u -> v`).
    pub fn out_edges(&self, u: NodeId) -> &[EdgeId] {
        &self.out[u.index()]
    }

    /// Directed edges entering `u` (the inbound traffic directions `u <- v`).
    pub fn in_edges(&self, u: NodeId) -> &[EdgeId] {
        &self.inc[u.index()]
    }

    /// `no(u)`: adjacent intersections reachable via outbound traffic.
    pub fn outbound_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[u.index()].iter().map(|e| self.edges[e.index()].to)
    }

    /// `ni(u)`: adjacent intersections at the far end of each inbound flow.
    pub fn inbound_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inc[u.index()]
            .iter()
            .map(|e| self.edges[e.index()].from)
    }

    /// The directed edge `from -> to`, if one exists. With at most one edge
    /// per ordered node pair (all builders guarantee this) the result is
    /// unique.
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.out[from.index()]
            .iter()
            .copied()
            .find(|e| self.edges[e.index()].to == to)
    }

    /// Marks the border interaction flows at `node` (open road systems).
    pub fn set_interaction(&mut self, node: NodeId, interaction: Interaction) {
        self.interactions[node.index()] = interaction;
    }

    /// The border interaction flags of `node`.
    pub fn interaction(&self, node: NodeId) -> Interaction {
        self.interactions[node.index()]
    }

    /// Whether any node has border interaction, i.e. the system is *open*.
    pub fn is_open(&self) -> bool {
        self.interactions.iter().any(Interaction::any)
    }

    /// All border intersections (Definition 2).
    pub fn border_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.interactions[n.index()].any())
            .collect()
    }

    /// Closes the border by removing all interaction flows, turning an open
    /// system into the closed system used in the first half of the paper's
    /// evaluation ("we first close the traffic lanes along the border").
    pub fn close_border(&mut self) {
        for i in &mut self.interactions {
            *i = Interaction::default();
        }
    }

    /// Rescales every speed limit by `factor` (e.g. 25/15 for the paper's
    /// speed-up experiments in Figs. 4(b,c) and 5(b,c)).
    pub fn scale_speed(&mut self, factor: f64) {
        assert!(factor > 0.0);
        for e in &mut self.edges {
            e.speed_mps *= factor;
        }
    }

    /// Sets every speed limit to `speed_mps`.
    pub fn set_speed_all(&mut self, speed_mps: f64) {
        assert!(speed_mps > 0.0);
        for e in &mut self.edges {
            e.speed_mps = speed_mps;
        }
    }

    /// Bounding box of the intersections, or `None` for an empty network.
    pub fn bounds(&self) -> Option<Bounds> {
        Bounds::of(self.nodes.iter().map(|n| n.pos))
    }

    /// Total driving length of all directed edges, in metres.
    pub fn total_length_m(&self) -> f64 {
        self.edges.iter().map(|e| e.length_m).sum()
    }

    /// Fraction of directed edges that belong to one-way streets.
    pub fn one_way_fraction(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let ones = self.edges.iter().filter(|e| e.is_one_way()).count();
        ones as f64 / self.edges.len() as f64
    }

    /// Structural validation: endpoint sanity, metric sanity, twin
    /// consistency, no self loops, and strong connectivity (required by the
    /// counting wave and by Theorem 4's patrol cycle).
    pub fn validate(&self) -> Result<(), NetError> {
        if self.nodes.is_empty() {
            return Err(NetError::Empty);
        }
        for e in &self.edges {
            if e.from.index() >= self.nodes.len() || e.to.index() >= self.nodes.len() {
                return Err(NetError::DanglingEdge(e.id));
            }
            if e.from == e.to {
                return Err(NetError::SelfLoop(e.id));
            }
            if e.length_m.is_nan()
                || e.length_m <= 0.0
                || e.speed_mps.is_nan()
                || e.speed_mps <= 0.0
            {
                return Err(NetError::BadEdgeMetric(e.id));
            }
            if let Some(t) = e.twin {
                let tw = self.edges.get(t.index()).ok_or(NetError::BadTwin(e.id))?;
                if tw.twin != Some(e.id) || tw.from != e.to || tw.to != e.from {
                    return Err(NetError::BadTwin(e.id));
                }
            }
        }
        let comps = crate::connectivity::strongly_connected_components(self);
        if comps.len() != 1 {
            return Err(NetError::NotStronglyConnected {
                components: comps.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (RoadNetwork, [NodeId; 3]) {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(100.0, 0.0));
        let c = net.add_node(Point::new(50.0, 80.0));
        net.add_two_way(a, b, 1, 6.7);
        net.add_two_way(b, c, 1, 6.7);
        net.add_two_way(c, a, 1, 6.7);
        (net, [a, b, c])
    }

    #[test]
    fn two_way_creates_consistent_twins() {
        let (net, [a, b, _]) = triangle();
        let ab = net.edge_between(a, b).unwrap();
        let ba = net.edge_between(b, a).unwrap();
        assert_eq!(net.edge(ab).twin, Some(ba));
        assert_eq!(net.edge(ba).twin, Some(ab));
        assert!(!net.edge(ab).is_one_way());
    }

    #[test]
    fn neighbors_match_paper_notation() {
        let (net, [a, b, c]) = triangle();
        let mut no: Vec<_> = net.outbound_neighbors(a).collect();
        no.sort();
        let mut ni: Vec<_> = net.inbound_neighbors(a).collect();
        ni.sort();
        assert_eq!(no, vec![b, c]);
        // Bidirectional roads: no(u) == ni(u) (Section III-A).
        assert_eq!(no, ni);
    }

    #[test]
    fn one_way_breaks_symmetry() {
        let mut net = RoadNetwork::new();
        let u = net.add_node(Point::new(0.0, 0.0));
        let v = net.add_node(Point::new(10.0, 0.0));
        net.add_one_way(u, v, 1, 5.0);
        assert_eq!(net.outbound_neighbors(u).count(), 1);
        assert_eq!(net.inbound_neighbors(u).count(), 0);
        assert!(net.edge(EdgeId(0)).is_one_way());
    }

    #[test]
    fn edge_lengths_follow_geometry() {
        let (net, [a, b, _]) = triangle();
        let ab = net.edge_between(a, b).unwrap();
        assert!((net.edge(ab).length_m - 100.0).abs() < 1e-9);
        assert!((net.edge(ab).travel_time_s() - 100.0 / 6.7).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_triangle() {
        let (net, _) = triangle();
        net.validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(RoadNetwork::new().validate(), Err(NetError::Empty));
    }

    #[test]
    fn validate_rejects_disconnected() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(10.0, 0.0));
        net.add_node(Point::new(99.0, 99.0)); // isolated
        net.add_two_way(a, b, 1, 5.0);
        assert!(matches!(
            net.validate(),
            Err(NetError::NotStronglyConnected { .. })
        ));
    }

    #[test]
    fn validate_rejects_one_way_pair_without_return() {
        // u -> v only: v cannot reach u.
        let mut net = RoadNetwork::new();
        let u = net.add_node(Point::new(0.0, 0.0));
        let v = net.add_node(Point::new(10.0, 0.0));
        net.add_one_way(u, v, 1, 5.0);
        assert!(matches!(
            net.validate(),
            Err(NetError::NotStronglyConnected { components: 2 })
        ));
    }

    #[test]
    fn twin_edge_is_idempotent() {
        let mut net = RoadNetwork::new();
        let u = net.add_node(Point::new(0.0, 0.0));
        let v = net.add_node(Point::new(10.0, 0.0));
        let e = net.add_one_way(u, v, 2, 5.0);
        let r1 = net.twin_edge(e);
        let r2 = net.twin_edge(e);
        assert_eq!(r1, r2);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.edge(r1).lanes, 2);
        net.validate().unwrap();
    }

    #[test]
    fn interactions_default_closed() {
        let (mut net, [a, _, _]) = triangle();
        assert!(!net.is_open());
        net.set_interaction(
            a,
            Interaction {
                inbound: true,
                outbound: true,
            },
        );
        assert!(net.is_open());
        assert_eq!(net.border_nodes(), vec![a]);
        net.close_border();
        assert!(!net.is_open());
    }

    #[test]
    fn scale_speed_rescales_all() {
        let (mut net, _) = triangle();
        let before: Vec<f64> = net.edges().map(|e| e.speed_mps).collect();
        net.scale_speed(25.0 / 15.0);
        for (e, b) in net.edges().zip(before) {
            assert!((e.speed_mps - b * 25.0 / 15.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut net = RoadNetwork::new();
        let u = net.add_node(Point::new(0.0, 0.0));
        net.add_one_way(u, u, 1, 5.0);
    }

    #[test]
    fn one_way_fraction_counts_directions() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(10.0, 0.0));
        let c = net.add_node(Point::new(20.0, 0.0));
        net.add_two_way(a, b, 1, 5.0);
        net.add_one_way(b, c, 1, 5.0);
        net.add_one_way(c, a, 1, 5.0);
        assert!((net.one_way_fraction() - 0.5).abs() < 1e-12);
    }
}
