//! Map builders: the paper's evaluation networks, reconstructed.
//!
//! * [`fig1_triangle`] — the three-intersection walkthrough of Fig. 1.
//! * [`grid`] — a plain bidirectional lattice for unit tests.
//! * [`directed_ring`] — a one-way Hamiltonian ring (patrol-cycle tests).
//! * [`manhattan`] — the synthetic midtown grid standing in for the
//!   paper's OpenStreetMap extract (Central Park → Madison Square Park):
//!   real avenue/street spacing, the one-way parity pattern, a Broadway
//!   diagonal and a Columbus-Circle-style roundabout.
//! * [`random_city`] — seeded irregular cities for property tests.
//! * [`thin_to_one_way`] — converts a bidirectional map to mostly one-way
//!   streets and repairs strong connectivity.
//!
//! Every builder is deterministic: the same config always yields a
//! byte-identical network (scenario files round-trip through JSON and must
//! rebuild the same map).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::connectivity::make_strongly_connected;
use crate::geometry::{mph_to_mps, Point};
use crate::graph::{Interaction, NodeId, NodeKind, RoadNetwork};

/// The Fig. 1 walkthrough map: three intersections joined pairwise by
/// bidirectional segments of `segment_m` metres (an equilateral triangle,
/// so geometric and driving lengths agree).
pub fn fig1_triangle(segment_m: f64, lanes: u8, speed_mps: f64) -> RoadNetwork {
    let mut net = RoadNetwork::new();
    let a = net.add_node(Point::new(0.0, 0.0));
    let b = net.add_node(Point::new(segment_m, 0.0));
    let c = net.add_node(Point::new(segment_m / 2.0, segment_m * 3f64.sqrt() / 2.0));
    for (u, v) in [(a, b), (b, c), (c, a)] {
        net.add_two_way(u, v, lanes, speed_mps);
    }
    net
}

/// A `cols` × `rows` bidirectional lattice with `spacing_m` metres between
/// neighbouring intersections. Node ids are row-major: the intersection in
/// column `c` of row `r` is `NodeId(r * cols + c)`. The map is closed (no
/// border interaction).
pub fn grid(cols: usize, rows: usize, spacing_m: f64, lanes: u8, speed_mps: f64) -> RoadNetwork {
    assert!(cols >= 1 && rows >= 1, "grid needs at least one node");
    let mut net = RoadNetwork::new();
    for r in 0..rows {
        for c in 0..cols {
            net.add_node(Point::new(c as f64 * spacing_m, r as f64 * spacing_m));
        }
    }
    let at = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                net.add_two_way(at(r, c), at(r, c + 1), lanes, speed_mps);
            }
            if r + 1 < rows {
                net.add_two_way(at(r, c), at(r + 1, c), lanes, speed_mps);
            }
        }
    }
    net
}

/// A one-way ring `0 → 1 → … → nodes-1 → 0` with `spacing_m` metres of
/// driving distance per segment. The unique covering cycle is the ring
/// itself, which makes it the canonical patrol-cycle fixture.
pub fn directed_ring(nodes: usize, spacing_m: f64, lanes: u8, speed_mps: f64) -> RoadNetwork {
    assert!(nodes >= 2, "a ring needs at least two nodes");
    let mut net = RoadNetwork::new();
    let radius = nodes as f64 * spacing_m / (2.0 * std::f64::consts::PI);
    for i in 0..nodes {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / nodes as f64;
        net.add_node(Point::new(radius * angle.cos(), radius * angle.sin()));
    }
    for i in 0..nodes {
        let from = NodeId(i as u32);
        let to = NodeId(((i + 1) % nodes) as u32);
        net.add_one_way_with_length(from, to, spacing_m, lanes, speed_mps);
    }
    net
}

/// Real-world midtown spacing: ~274 m between avenues.
const AVENUE_SPACING_M: f64 = 274.0;
/// Real-world midtown spacing: ~80 m between streets.
const STREET_SPACING_M: f64 = 80.0;

/// Configuration of the synthetic midtown map. The default reproduces the
/// paper's evaluation extent: 12 avenues × 37 streets = 444 monitored
/// intersections between Central Park and Madison Square Park.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManhattanConfig {
    /// North–south roads (columns), spaced ~274 m apart.
    pub avenues: usize,
    /// East–west roads (rows), spaced ~80 m apart.
    pub streets: usize,
    /// Speed limit applied to every segment, in mph (paper: 15, with a
    /// 25 mph what-if).
    pub speed_mph: f64,
    /// Whether to overlay the Broadway diagonal (with its
    /// Columbus-Circle-style roundabout at the north end).
    pub broadway: bool,
}

impl Default for ManhattanConfig {
    fn default() -> Self {
        ManhattanConfig {
            avenues: 12,
            streets: 37,
            speed_mph: 15.0,
            broadway: true,
        }
    }
}

impl ManhattanConfig {
    /// A reduced midtown (6 avenues × 10 streets) for fast tests and
    /// benches; same structure, same rules, ~7× fewer intersections.
    pub fn small() -> Self {
        ManhattanConfig {
            avenues: 6,
            streets: 10,
            ..ManhattanConfig::default()
        }
    }

    /// The id of the intersection of avenue `a` (west → east) and street
    /// `s` (south → north). Ids are row-major by street.
    pub fn node_at(&self, a: usize, s: usize) -> NodeId {
        assert!(a < self.avenues && s < self.streets);
        NodeId((s * self.avenues + a) as u32)
    }
}

/// Builds the synthetic midtown grid (see [`ManhattanConfig`]).
///
/// One-way parity follows the real pattern — even streets run eastbound,
/// odd streets westbound, avenues alternate north/south — with every 8th
/// street and every 6th avenue kept bidirectional (the 42nd-St-style
/// crosstown corridors). All perimeter intersections carry border
/// interaction in both directions, so the map models an *open* system
/// until [`RoadNetwork::close_border`] seals it. A final repair pass
/// twins whatever one-way edges are needed for strong connectivity.
pub fn manhattan(cfg: &ManhattanConfig) -> RoadNetwork {
    assert!(
        cfg.avenues >= 2 && cfg.streets >= 2,
        "midtown needs a 2x2 core"
    );
    let speed = mph_to_mps(cfg.speed_mph);
    let mut net = RoadNetwork::new();
    for s in 0..cfg.streets {
        for a in 0..cfg.avenues {
            net.add_node(Point::new(
                a as f64 * AVENUE_SPACING_M,
                s as f64 * STREET_SPACING_M,
            ));
        }
    }

    // Streets: east-west segments along each row.
    for s in 0..cfg.streets {
        for a in 0..cfg.avenues - 1 {
            let west = cfg.node_at(a, s);
            let east = cfg.node_at(a + 1, s);
            if s % 8 == 0 {
                net.add_two_way(west, east, 2, speed);
            } else if s % 2 == 0 {
                net.add_one_way(west, east, 1, speed);
            } else {
                net.add_one_way(east, west, 1, speed);
            }
        }
    }

    // Avenues: north-south segments along each column.
    for a in 0..cfg.avenues {
        for s in 0..cfg.streets - 1 {
            let south = cfg.node_at(a, s);
            let north = cfg.node_at(a, s + 1);
            if a % 6 == 0 {
                net.add_two_way(south, north, 2, speed);
            } else if a % 2 == 0 {
                net.add_one_way(south, north, 1, speed);
            } else {
                net.add_one_way(north, south, 1, speed);
            }
        }
    }

    // Broadway: a bidirectional diagonal from the north-west corner,
    // dropping ~3 streets per avenue (274 m east ≈ 240 m south), with the
    // Columbus-Circle-style roundabout at its north end.
    if cfg.broadway {
        net.set_node_kind(
            cfg.node_at(0, cfg.streets - 1),
            NodeKind::Roundabout { radius_m: 18.0 },
        );
        let (mut a, mut s) = (0usize, cfg.streets - 1);
        while a + 1 < cfg.avenues && s >= 3 {
            let next = (a + 1, s - 3);
            net.add_two_way(cfg.node_at(a, s), cfg.node_at(next.0, next.1), 1, speed);
            (a, s) = next;
        }
    }

    // Perimeter intersections exchange traffic with the outside world.
    let both = Interaction {
        inbound: true,
        outbound: true,
    };
    for s in 0..cfg.streets {
        for a in 0..cfg.avenues {
            if s == 0 || s == cfg.streets - 1 || a == 0 || a == cfg.avenues - 1 {
                net.set_interaction(cfg.node_at(a, s), both);
            }
        }
    }

    make_strongly_connected(&mut net);
    net
}

/// Configuration of a seeded irregular city (see [`random_city`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomCityConfig {
    /// Number of intersections.
    pub nodes: usize,
    /// Nearest neighbours each intersection connects to.
    pub neighbors: usize,
    /// Fraction of segments built as one-way streets (the repair pass may
    /// twin a few of them back).
    pub one_way_fraction: f64,
    /// Fraction of intersections marked as border checkpoints (the ones
    /// farthest from the city centre).
    pub border_fraction: f64,
    /// RNG seed; the map is a pure function of this config.
    pub seed: u64,
    /// Speed limit on every segment, m/s.
    pub speed_mps: f64,
}

impl Default for RandomCityConfig {
    fn default() -> Self {
        RandomCityConfig {
            nodes: 30,
            neighbors: 3,
            one_way_fraction: 0.25,
            border_fraction: 0.0,
            seed: 1,
            speed_mps: 6.7,
        }
    }
}

/// Builds a deterministic irregular city: jittered-grid node placement,
/// nearest-neighbour segments, extra links until the street layout is
/// (weakly) connected, a seeded one-way assignment, and a final repair
/// pass guaranteeing strong connectivity. `border_fraction` marks the
/// most peripheral intersections as border checkpoints.
pub fn random_city(cfg: &RandomCityConfig) -> RoadNetwork {
    let n = cfg.nodes.max(2);
    // Decorrelate the map stream from consumers that reuse the same small
    // seed integers (traffic and protocol RNGs are often seeded with the
    // same value as the map).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5851_F42D);
    let mut net = RoadNetwork::new();

    // Jittered grid placement: cells 150 m apart, ±40 m of jitter, so no
    // two intersections can coincide (validate requires positive lengths).
    let cells = (n as f64).sqrt().ceil() as usize;
    let mut pts = Vec::with_capacity(n);
    for i in 0..n {
        let (cx, cy) = ((i % cells) as f64, (i / cells) as f64);
        let p = Point::new(
            cx * 150.0 + rng.gen_range(-40.0..40.0),
            cy * 150.0 + rng.gen_range(-40.0..40.0),
        );
        net.add_node(p);
        pts.push(p);
    }

    // Undirected street layout: k nearest neighbours per intersection.
    let k = cfg.neighbors.clamp(1, n - 1);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut linked = vec![false; n * n];
    let link = |pairs: &mut Vec<(usize, usize)>, linked: &mut Vec<bool>, a: usize, b: usize| {
        let (lo, hi) = (a.min(b), a.max(b));
        if !linked[lo * n + hi] {
            linked[lo * n + hi] = true;
            pairs.push((lo, hi));
        }
    };
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| {
            pts[i]
                .distance_sq(&pts[a])
                .partial_cmp(&pts[i].distance_sq(&pts[b]))
                .unwrap()
        });
        for &j in others.iter().take(k) {
            link(&mut pairs, &mut linked, i, j);
        }
    }

    // Bridge disconnected districts with their closest cross pair until
    // the undirected layout is connected.
    let mut comp: Vec<usize> = (0..n).collect();
    fn root(comp: &mut [usize], mut x: usize) -> usize {
        while comp[x] != x {
            comp[x] = comp[comp[x]];
            x = comp[x];
        }
        x
    }
    for &(a, b) in &pairs {
        let (ra, rb) = (root(&mut comp, a), root(&mut comp, b));
        comp[ra] = rb;
    }
    loop {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n {
            for j in i + 1..n {
                if root(&mut comp, i) != root(&mut comp, j) {
                    let d = pts[i].distance_sq(&pts[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
        }
        match best {
            Some((_, i, j)) => {
                link(&mut pairs, &mut linked, i, j);
                let (ri, rj) = (root(&mut comp, i), root(&mut comp, j));
                comp[ri] = rj;
            }
            None => break,
        }
    }

    // Seeded one-way assignment, then the strong-connectivity repair.
    for &(a, b) in &pairs {
        let (u, v) = (NodeId(a as u32), NodeId(b as u32));
        if rng.gen_bool(cfg.one_way_fraction.clamp(0.0, 1.0)) {
            if rng.gen_bool(0.5) {
                net.add_one_way(u, v, 1, cfg.speed_mps);
            } else {
                net.add_one_way(v, u, 1, cfg.speed_mps);
            }
        } else {
            net.add_two_way(u, v, 1, cfg.speed_mps);
        }
    }
    make_strongly_connected(&mut net);

    // Border checkpoints: the intersections farthest from the centroid.
    let border = ((cfg.border_fraction.clamp(0.0, 1.0) * n as f64).round() as usize).min(n);
    if border > 0 {
        let cx = pts.iter().map(|p| p.x).sum::<f64>() / n as f64;
        let cy = pts.iter().map(|p| p.y).sum::<f64>() / n as f64;
        let centre = Point::new(cx, cy);
        let mut by_dist: Vec<usize> = (0..n).collect();
        by_dist.sort_by(|&a, &b| {
            centre
                .distance_sq(&pts[b])
                .partial_cmp(&centre.distance_sq(&pts[a]))
                .unwrap()
        });
        let both = Interaction {
            inbound: true,
            outbound: true,
        };
        for &i in by_dist.iter().take(border) {
            net.set_interaction(NodeId(i as u32), both);
        }
    }
    net
}

/// Converts a (mostly) bidirectional map to one-way streets: every
/// `keep`-th physical segment stays bidirectional (`keep == 0` keeps
/// none), the rest keep a single direction, alternating so neighbouring
/// streets point opposite ways. A repair pass then re-twins whatever is
/// needed for strong connectivity — the property the counting wave and
/// Theorem 4 both rely on.
pub fn thin_to_one_way(net: &RoadNetwork, keep: usize) -> RoadNetwork {
    let mut out = RoadNetwork::new();
    for node in net.nodes() {
        out.add_node_kind(node.pos, node.kind);
    }
    let mut seen = vec![false; net.edge_count()];
    let mut seg = 0usize;
    for e in net.edges() {
        if seen[e.id.index()] {
            continue;
        }
        seen[e.id.index()] = true;
        if let Some(t) = e.twin {
            seen[t.index()] = true;
        }
        let keep_two_way = e.twin.is_some() && keep > 0 && seg.is_multiple_of(keep);
        if e.twin.is_none() || keep_two_way {
            let fwd = out.add_one_way_with_length(e.from, e.to, e.length_m, e.lanes, e.speed_mps);
            if e.twin.is_some() {
                out.twin_edge(fwd);
            }
        } else {
            let (from, to) = if seg.is_multiple_of(2) {
                (e.from, e.to)
            } else {
                (e.to, e.from)
            };
            out.add_one_way_with_length(from, to, e.length_m, e.lanes, e.speed_mps);
        }
        seg += 1;
    }
    for node in net.node_ids() {
        out.set_interaction(node, net.interaction(node));
    }
    make_strongly_connected(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_strongly_connected;

    #[test]
    fn triangle_has_all_six_directions() {
        let net = fig1_triangle(250.0, 1, 6.7);
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 6);
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    assert!(net.edge_between(NodeId(a), NodeId(b)).is_some());
                }
            }
        }
        net.validate().unwrap();
    }

    #[test]
    fn grid_is_row_major_and_valid() {
        let net = grid(4, 3, 100.0, 1, 10.0);
        assert_eq!(net.node_count(), 12);
        // Node 5 is row 1, col 1: east, west, north, south neighbours.
        assert!(net.edge_between(NodeId(5), NodeId(6)).is_some());
        assert!(net.edge_between(NodeId(5), NodeId(9)).is_some());
        net.validate().unwrap();
        assert!(!net.is_open());
    }

    #[test]
    fn ring_lengths_are_exact() {
        let net = directed_ring(7, 100.0, 1, 5.0);
        assert_eq!(net.edge_count(), 7);
        for e in net.edges() {
            assert_eq!(e.length_m, 100.0);
            assert!(e.is_one_way());
        }
        net.validate().unwrap();
    }

    #[test]
    fn midtown_default_matches_paper_extent() {
        let cfg = ManhattanConfig::default();
        let net = manhattan(&cfg);
        assert_eq!(net.node_count(), 12 * 37);
        assert!(net.is_open());
        net.validate().unwrap();
        // The roundabout sits at Broadway's north end.
        let kind = net.node(cfg.node_at(0, cfg.streets - 1)).kind;
        assert!(matches!(kind, NodeKind::Roundabout { .. }));
    }

    #[test]
    fn midtown_is_deterministic() {
        let a = manhattan(&ManhattanConfig::small());
        let b = manhattan(&ManhattanConfig::small());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!((ea.from, ea.to, ea.twin), (eb.from, eb.to, eb.twin));
        }
    }

    #[test]
    fn random_city_is_deterministic_and_strong() {
        for seed in [0u64, 1, 99] {
            let cfg = RandomCityConfig {
                seed,
                border_fraction: 0.2,
                ..Default::default()
            };
            let a = random_city(&cfg);
            let b = random_city(&cfg);
            assert_eq!(a.edge_count(), b.edge_count());
            a.validate().unwrap();
            assert!(is_strongly_connected(&a));
            assert!(a.is_open());
        }
    }

    #[test]
    fn thinning_keep_zero_removes_all_twins_it_can() {
        let net = grid(3, 3, 100.0, 1, 6.7);
        let thin = thin_to_one_way(&net, 0);
        thin.validate().unwrap();
        assert!(thin.one_way_fraction() > 0.0);
    }
}
