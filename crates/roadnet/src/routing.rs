//! Routing over the road network.
//!
//! Two policies matter for the reproduction:
//!
//! * [`shortest_path`] — Dijkstra by free-flow travel time. Used by patrol
//!   cycle construction and by trip-based demand.
//! * [`random_turn`] — the *unpredictable trajectory* of Section I: at every
//!   intersection a vehicle picks a random outbound direction, avoiding an
//!   immediate U-turn when any alternative exists. This is the adversarial
//!   workload the protocol must tolerate ("the target can deliberately drive
//!   in an unpredictable manner").

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A travel-time-ordered heap entry (min-heap via reversed ordering).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite non-NaN by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A directed path: consecutive edges where each edge's head is the next
/// edge's tail.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    /// Edges in driving order. Empty for a zero-length path.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Total free-flow travel time in seconds.
    pub fn travel_time_s(&self, net: &RoadNetwork) -> f64 {
        self.edges
            .iter()
            .map(|e| net.edge(*e).travel_time_s())
            .sum()
    }

    /// Total driving length in metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|e| net.edge(*e).length_m).sum()
    }

    /// Node sequence of the path starting at `origin` (needed because an
    /// empty path carries no endpoint information).
    pub fn node_sequence(&self, net: &RoadNetwork, origin: NodeId) -> Vec<NodeId> {
        let mut seq = Vec::with_capacity(self.edges.len() + 1);
        seq.push(origin);
        for e in &self.edges {
            debug_assert_eq!(net.edge(*e).from, *seq.last().unwrap());
            seq.push(net.edge(*e).to);
        }
        seq
    }
}

/// Dijkstra by free-flow travel time from `from` to `to`. Returns `None`
/// when `to` is unreachable. `from == to` yields an empty path.
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Path> {
    let (dist, prev) = dijkstra(net, from, Some(to));
    if from == to {
        return Some(Path::default());
    }
    if dist[to.index()].is_infinite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = to;
    while cur != from {
        let e = prev[cur.index()].expect("finite distance implies a predecessor");
        edges.push(e);
        cur = net.edge(e).from;
    }
    edges.reverse();
    Some(Path { edges })
}

/// Single-source travel times to every node. Unreachable nodes get
/// `f64::INFINITY`.
pub fn travel_times_from(net: &RoadNetwork, from: NodeId) -> Vec<f64> {
    dijkstra(net, from, None).0
}

/// The network's travel-time diameter estimated over a node sample: the
/// maximum over sampled sources of the maximum finite shortest-path time.
/// The paper's observation 5 says counting time tracks this diameter.
pub fn travel_time_diameter(net: &RoadNetwork, sample_every: usize) -> f64 {
    let step = sample_every.max(1);
    let mut diameter: f64 = 0.0;
    for (i, u) in net.node_ids().enumerate() {
        if i % step != 0 {
            continue;
        }
        let times = travel_times_from(net, u);
        for t in times {
            if t.is_finite() {
                diameter = diameter.max(t);
            }
        }
    }
    diameter
}

fn dijkstra(
    net: &RoadNetwork,
    from: NodeId,
    stop_at: Option<NodeId>,
) -> (Vec<f64>, Vec<Option<EdgeId>>) {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: from,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if stop_at == Some(node) {
            break;
        }
        for &e in net.out_edges(node) {
            let edge = net.edge(e);
            let next = cost + edge.travel_time_s();
            if next < dist[edge.to.index()] {
                dist[edge.to.index()] = next;
                prev[edge.to.index()] = Some(e);
                heap.push(HeapEntry {
                    cost: next,
                    node: edge.to,
                });
            }
        }
    }
    (dist, prev)
}

/// Picks the next outbound edge for a vehicle arriving at `node` via
/// `arrived_on` (or `None` for a fresh departure), avoiding an immediate
/// U-turn (the twin of the arrival edge) whenever another choice exists.
///
/// Panics if `node` has no outbound edges — a dead end, which valid
/// (strongly connected) networks never contain.
pub fn random_turn<R: Rng + ?Sized>(
    net: &RoadNetwork,
    node: NodeId,
    arrived_on: Option<EdgeId>,
    rng: &mut R,
) -> EdgeId {
    let out = net.out_edges(node);
    assert!(!out.is_empty(), "dead end at {node}: no outbound edges");
    let forbidden = arrived_on.and_then(|e| net.edge(e).twin);
    let candidates: Vec<EdgeId> = out
        .iter()
        .copied()
        .filter(|e| Some(*e) != forbidden)
        .collect();
    let pool: &[EdgeId] = if candidates.is_empty() {
        out
    } else {
        &candidates
    };
    pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::grid;
    use crate::geometry::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_grid() -> RoadNetwork {
        grid(4, 4, 100.0, 1, 10.0)
    }

    #[test]
    fn shortest_path_on_grid_has_manhattan_time() {
        let net = small_grid();
        // Corner (0,0) -> corner (3,3): 6 edges of 10 s each.
        let from = NodeId(0);
        let to = NodeId(15);
        let p = shortest_path(&net, from, to).unwrap();
        assert_eq!(p.edges.len(), 6);
        assert!((p.travel_time_s(&net) - 60.0).abs() < 1e-9);
        assert!((p.length_m(&net) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn path_node_sequence_is_contiguous() {
        let net = small_grid();
        let p = shortest_path(&net, NodeId(0), NodeId(15)).unwrap();
        let seq = p.node_sequence(&net, NodeId(0));
        assert_eq!(seq.first(), Some(&NodeId(0)));
        assert_eq!(seq.last(), Some(&NodeId(15)));
        for (i, w) in p.edges.iter().enumerate() {
            assert_eq!(net.edge(*w).from, seq[i]);
            assert_eq!(net.edge(*w).to, seq[i + 1]);
        }
    }

    #[test]
    fn trivial_path_is_empty() {
        let net = small_grid();
        let p = shortest_path(&net, NodeId(5), NodeId(5)).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.travel_time_s(&net), 0.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(10.0, 0.0));
        net.add_one_way(a, b, 1, 5.0);
        assert!(shortest_path(&net, b, a).is_none());
        let times = travel_times_from(&net, b);
        assert!(times[a.index()].is_infinite());
    }

    #[test]
    fn travel_times_match_shortest_paths() {
        let net = small_grid();
        let times = travel_times_from(&net, NodeId(0));
        for target in net.node_ids() {
            let p = shortest_path(&net, NodeId(0), target).unwrap();
            assert!((times[target.index()] - p.travel_time_s(&net)).abs() < 1e-9);
        }
    }

    #[test]
    fn diameter_of_grid() {
        let net = small_grid();
        let d = travel_time_diameter(&net, 1);
        assert!((d - 60.0).abs() < 1e-9);
    }

    #[test]
    fn random_turn_avoids_u_turn_when_possible() {
        let net = small_grid();
        let mut rng = StdRng::seed_from_u64(7);
        // Node 5 is interior with 4 neighbours; arriving from node 1.
        let arrival = net.edge_between(NodeId(1), NodeId(5)).unwrap();
        for _ in 0..100 {
            let e = random_turn(&net, NodeId(5), Some(arrival), &mut rng);
            assert_ne!(net.edge(e).to, NodeId(1), "took a U-turn with options left");
        }
    }

    #[test]
    fn random_turn_u_turns_at_cul_de_sac() {
        // a <-> b, arrive at b from a: the only exit is back to a.
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(10.0, 0.0));
        let (ab, ba) = net.add_two_way(a, b, 1, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let e = random_turn(&net, b, Some(ab), &mut rng);
        assert_eq!(e, ba);
    }

    #[test]
    fn random_turn_covers_all_options() {
        let net = small_grid();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(random_turn(&net, NodeId(5), None, &mut rng));
        }
        assert_eq!(seen.len(), net.out_edges(NodeId(5)).len());
    }
}
