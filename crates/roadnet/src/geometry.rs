//! Planar geometry primitives used to lay out road networks.
//!
//! All coordinates are in metres in a local east-north plane. The counting
//! protocol itself never looks at geometry; it only matters for segment
//! lengths (travel times) and for rendering/debugging.

use serde::{Deserialize, Serialize};

/// A point in the local east/north plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from east/north coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation from `self` toward `other` by fraction `t`
    /// (`t = 0` yields `self`, `t = 1` yields `other`).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Heading from `self` to `other` in radians, measured counter-clockwise
    /// from east. Returns 0 for coincident points.
    pub fn heading_to(&self, other: &Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if dx == 0.0 && dy == 0.0 {
            0.0
        } else {
            dy.atan2(dx)
        }
    }
}

/// Axis-aligned bounding box of a set of points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl Bounds {
    /// Bounding box of an iterator of points. Returns `None` when empty.
    pub fn of(points: impl IntoIterator<Item = Point>) -> Option<Bounds> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Bounds {
            min: first,
            max: first,
        };
        for p in it {
            b.min.x = b.min.x.min(p.x);
            b.min.y = b.min.y.min(p.y);
            b.max.x = b.max.x.max(p.x);
            b.max.y = b.max.y.max(p.y);
        }
        Some(b)
    }

    /// Width (east-west extent) in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent) in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Length of the box diagonal in metres. The paper's observation 5 notes
    /// that counting time is proportional to travel time along the region
    /// diameter; this is the geometric proxy we report for it.
    pub fn diagonal(&self) -> f64 {
        self.min.distance(&self.max)
    }

    /// Whether `p` lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// Converts miles per hour to metres per second. The paper specifies speed
/// limits of 15 mph and 25 mph (NYC's then-proposed limit, ref \[14\]).
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * 0.44704
}

/// Converts metres per second to miles per hour.
pub fn mps_to_mph(mps: f64) -> f64 {
    mps / 0.44704
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(10.0, -1.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 6.0);
        let m = a.midpoint(&b);
        let l = a.lerp(&b, 0.5);
        assert!((m.x - l.x).abs() < 1e-12 && (m.y - l.y).abs() < 1e-12);
        assert_eq!(m.x, 5.0);
        assert_eq!(m.y, 3.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 9.0);
        let p0 = a.lerp(&b, 0.0);
        let p1 = a.lerp(&b, 1.0);
        assert_eq!((p0.x, p0.y), (1.0, 2.0));
        assert_eq!((p1.x, p1.y), (-3.0, 9.0));
    }

    #[test]
    fn heading_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.heading_to(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        let north = o.heading_to(&Point::new(0.0, 1.0));
        assert!((north - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn heading_of_coincident_points_is_zero() {
        let o = Point::new(3.0, 3.0);
        assert_eq!(o.heading_to(&o), 0.0);
    }

    #[test]
    fn bounds_of_points() {
        let b = Bounds::of([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ])
        .unwrap();
        assert_eq!(b.min.x, -2.0);
        assert_eq!(b.min.y, -1.0);
        assert_eq!(b.max.x, 4.0);
        assert_eq!(b.max.y, 5.0);
        assert_eq!(b.width(), 6.0);
        assert_eq!(b.height(), 6.0);
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(!b.contains(&Point::new(5.0, 0.0)));
    }

    #[test]
    fn bounds_of_empty_is_none() {
        assert!(Bounds::of(std::iter::empty()).is_none());
    }

    #[test]
    fn mph_round_trips() {
        for mph in [15.0, 25.0, 66.0] {
            assert!((mps_to_mph(mph_to_mps(mph)) - mph).abs() < 1e-9);
        }
        // The paper's two operating points.
        assert!((mph_to_mps(15.0) - 6.7056).abs() < 1e-4);
        assert!((mph_to_mps(25.0) - 11.176).abs() < 1e-3);
    }
}
