//! Connectivity analysis and repair.
//!
//! The counting wave (Alg. 1/3) reaches every checkpoint only when every
//! checkpoint is reachable from the seed, and the collection phase
//! (Alg. 2/4) plus the patrol cycle (Theorem 4) additionally need the seed
//! (resp. every node) to be reachable *from* every checkpoint — i.e. strong
//! connectivity of the directed road graph. Map builders call
//! [`make_strongly_connected`] after assigning one-way directions, mirroring
//! how cities upgrade one-way streets when they strand traffic (the paper's
//! ref \[10\]).

use crate::graph::{EdgeId, NodeId, RoadNetwork};

/// Tarjan's strongly-connected-components algorithm (iterative, so deep
/// grids cannot overflow the stack). Components are returned in reverse
/// topological order of the condensation.
pub fn strongly_connected_components(net: &RoadNetwork) -> Vec<Vec<NodeId>> {
    let n = net.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS frames: (node, next out-edge position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            let out = net.out_edges(NodeId(v));
            if *pos < out.len() {
                let e = out[*pos];
                *pos += 1;
                let w = net.edge(e).to.0;
                let wi = w as usize;
                if index[wi] == UNSET {
                    index[wi] = next_index;
                    low[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pi = parent as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// Whether the directed road graph is strongly connected.
pub fn is_strongly_connected(net: &RoadNetwork) -> bool {
    net.node_count() > 0 && strongly_connected_components(net).len() == 1
}

/// Whether the underlying undirected graph is connected ("the road system is
/// connected", Section III-A).
pub fn is_weakly_connected(net: &RoadNetwork) -> bool {
    let n = net.node_count();
    if n == 0 {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(v) = stack.pop() {
        let node = NodeId(v);
        let fwd = net.out_edges(node).iter().map(|e| net.edge(*e).to);
        let back = net.in_edges(node).iter().map(|e| net.edge(*e).from);
        for w in fwd.chain(back) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                visited += 1;
                stack.push(w.0);
            }
        }
    }
    visited == n
}

/// Repairs strong connectivity by upgrading one-way edges to bidirectional
/// segments (twinning) until the graph is strongly connected.
///
/// Strategy: while more than one SCC remains, find a one-way edge whose
/// endpoints lie in different SCCs and twin it — each such twin merges at
/// least the cycle it closes. Requires the underlying undirected graph to be
/// connected; panics otherwise (a builder bug, not a runtime condition).
/// Returns the edges that were added.
pub fn make_strongly_connected(net: &mut RoadNetwork) -> Vec<EdgeId> {
    assert!(
        is_weakly_connected(net),
        "cannot repair a weakly disconnected road network"
    );
    let mut added = Vec::new();
    loop {
        let comps = strongly_connected_components(net);
        if comps.len() <= 1 {
            break;
        }
        let mut comp_of = vec![0usize; net.node_count()];
        for (ci, comp) in comps.iter().enumerate() {
            for nid in comp {
                comp_of[nid.index()] = ci;
            }
        }
        let crossing = net
            .edge_ids()
            .find(|e| {
                let ed = net.edge(*e);
                ed.is_one_way() && comp_of[ed.from.index()] != comp_of[ed.to.index()]
            })
            .expect("weakly connected graph with >1 SCC must have a crossing one-way edge");
        added.push(net.twin_edge(crossing));
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn line_one_way(n: usize) -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let ids: Vec<_> = (0..n)
            .map(|i| net.add_node(Point::new(i as f64 * 10.0, 0.0)))
            .collect();
        for w in ids.windows(2) {
            net.add_one_way(w[0], w[1], 1, 5.0);
        }
        net
    }

    #[test]
    fn one_way_line_has_n_components() {
        let net = line_one_way(5);
        assert_eq!(strongly_connected_components(&net).len(), 5);
        assert!(!is_strongly_connected(&net));
        assert!(is_weakly_connected(&net));
    }

    #[test]
    fn directed_ring_is_strong() {
        let mut net = line_one_way(5);
        let last = NodeId(4);
        let first = NodeId(0);
        net.add_one_way(last, first, 1, 5.0);
        assert!(is_strongly_connected(&net));
    }

    #[test]
    fn repair_twins_until_strong() {
        let mut net = line_one_way(6);
        let added = make_strongly_connected(&mut net);
        assert!(is_strongly_connected(&net));
        // A one-way line of n nodes needs every edge twinned.
        assert_eq!(added.len(), 5);
        net.validate().unwrap();
    }

    #[test]
    fn repair_is_noop_on_strong_graph() {
        let mut net = line_one_way(4);
        net.add_one_way(NodeId(3), NodeId(0), 1, 5.0);
        let added = make_strongly_connected(&mut net);
        assert!(added.is_empty());
    }

    #[test]
    fn components_partition_nodes() {
        // Two directed triangles joined by a single one-way edge.
        let mut net = RoadNetwork::new();
        let ids: Vec<_> = (0..6)
            .map(|i| net.add_node(Point::new(i as f64, (i % 2) as f64)))
            .collect();
        for t in [[0, 1, 2], [3, 4, 5]] {
            for k in 0..3 {
                net.add_one_way(ids[t[k]], ids[t[(k + 1) % 3]], 1, 5.0);
            }
        }
        net.add_one_way(ids[2], ids[3], 1, 5.0);
        let comps = strongly_connected_components(&net);
        assert_eq!(comps.len(), 2);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn weak_connectivity_detects_islands() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(Point::new(0.0, 0.0));
        let b = net.add_node(Point::new(1.0, 0.0));
        net.add_two_way(a, b, 1, 5.0);
        net.add_node(Point::new(9.0, 9.0));
        assert!(!is_weakly_connected(&net));
    }

    #[test]
    fn empty_graph_is_not_connected() {
        let net = RoadNetwork::new();
        assert!(!is_strongly_connected(&net));
        assert!(!is_weakly_connected(&net));
    }
}
