//! Property-based invariants of the road-network substrate.

use proptest::prelude::*;
use vcount_roadnet::builders::{grid, random_city, thin_to_one_way, RandomCityConfig};
use vcount_roadnet::connectivity::is_strongly_connected;
use vcount_roadnet::{covering_cycle, shortest_path, travel_times_from, NodeId};

fn arb_city() -> impl Strategy<Value = RandomCityConfig> {
    (
        2usize..60,
        1usize..5,
        0.0f64..=1.0,
        any::<u64>(),
        0.0f64..0.5,
    )
        .prop_map(
            |(nodes, neighbors, one_way, seed, border)| RandomCityConfig {
                nodes,
                neighbors,
                one_way_fraction: one_way,
                seed,
                border_fraction: border,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated city validates and is strongly connected — the
    /// precondition of the counting wave and of Theorem 4.
    #[test]
    fn random_cities_validate(cfg in arb_city()) {
        let net = random_city(&cfg);
        prop_assert!(net.validate().is_ok());
        prop_assert!(is_strongly_connected(&net));
    }

    /// Theorem 4 as a property: every strongly connected city admits a
    /// covering patrol cycle from every start node (sampled).
    #[test]
    fn covering_cycle_exists(cfg in arb_city()) {
        let net = random_city(&cfg);
        let start = NodeId((cfg.seed % cfg.nodes as u64) as u32);
        let cycle = covering_cycle(&net, start).expect("strong graph must admit cycle");
        prop_assert!(cycle.verify(&net).is_ok());
    }

    /// Shortest-path times satisfy the triangle inequality through any
    /// intermediate node.
    #[test]
    fn shortest_path_triangle_inequality(cfg in arb_city(), a in 0u32..60, b in 0u32..60, c in 0u32..60) {
        let net = random_city(&cfg);
        let n = net.node_count() as u32;
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        let via = travel_times_from(&net, a)[c.index()] + travel_times_from(&net, c)[b.index()];
        let direct = travel_times_from(&net, a)[b.index()];
        prop_assert!(direct <= via + 1e-6);
    }

    /// A reconstructed shortest path is contiguous and its cost equals the
    /// distance array entry.
    #[test]
    fn path_cost_matches_distance(cfg in arb_city(), a in 0u32..60, b in 0u32..60) {
        let net = random_city(&cfg);
        let n = net.node_count() as u32;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let p = shortest_path(&net, a, b).expect("strongly connected");
        let d = travel_times_from(&net, a)[b.index()];
        prop_assert!((p.travel_time_s(&net) - d).abs() < 1e-6);
        let seq = p.node_sequence(&net, a);
        prop_assert_eq!(*seq.last().unwrap(), b);
    }

    /// Thinning a bidirectional grid to one-way streets preserves strong
    /// connectivity (the repair pass works for any keep period).
    #[test]
    fn thinning_preserves_strength(cols in 2usize..7, rows in 2usize..7, keep in 0usize..6) {
        let net = grid(cols, rows, 100.0, 1, 6.7);
        let thin = thin_to_one_way(&net, keep);
        prop_assert!(is_strongly_connected(&thin));
        prop_assert!(thin.validate().is_ok());
    }
}
