//! Serialization round-trips: maps and configs are plain data, so a
//! network serialized to JSON must rebuild identically (scenario files and
//! reproducibility depend on it).

use vcount_roadnet::builders::{manhattan, random_city, ManhattanConfig, RandomCityConfig};
use vcount_roadnet::{NodeKind, RoadNetwork};

fn assert_same(a: &RoadNetwork, b: &RoadNetwork) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for (na, nb) in a.nodes().zip(b.nodes()) {
        assert_eq!(na.id, nb.id);
        assert_eq!(na.pos, nb.pos);
        match (na.kind, nb.kind) {
            (NodeKind::Plain, NodeKind::Plain) => {}
            (NodeKind::Roundabout { radius_m: ra }, NodeKind::Roundabout { radius_m: rb }) => {
                assert_eq!(ra, rb)
            }
            other => panic!("node kind mismatch: {other:?}"),
        }
    }
    for (ea, eb) in a.edges().zip(b.edges()) {
        assert_eq!(
            (ea.from, ea.to, ea.lanes, ea.twin),
            (eb.from, eb.to, eb.lanes, eb.twin)
        );
        assert_eq!(ea.length_m, eb.length_m);
        assert_eq!(ea.speed_mps, eb.speed_mps);
    }
    for n in a.node_ids() {
        assert_eq!(a.interaction(n), b.interaction(n));
        assert_eq!(a.out_edges(n), b.out_edges(n));
        assert_eq!(a.in_edges(n), b.in_edges(n));
    }
}

#[test]
fn midtown_round_trips_through_json() {
    let net = manhattan(&ManhattanConfig::small());
    let json = serde_json::to_string(&net).unwrap();
    let back: RoadNetwork = serde_json::from_str(&json).unwrap();
    assert_same(&net, &back);
    back.validate().unwrap();
    assert!(back.is_open());
}

#[test]
fn random_city_round_trips_through_json() {
    for seed in [1u64, 42, 999] {
        let net = random_city(&RandomCityConfig {
            seed,
            border_fraction: 0.2,
            ..Default::default()
        });
        let json = serde_json::to_string(&net).unwrap();
        let back: RoadNetwork = serde_json::from_str(&json).unwrap();
        assert_same(&net, &back);
        back.validate().unwrap();
    }
}

#[test]
fn manhattan_config_round_trips() {
    let cfg = ManhattanConfig {
        speed_mph: 25.0,
        broadway: false,
        ..ManhattanConfig::default()
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ManhattanConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.speed_mph, 25.0);
    assert!(!back.broadway);
    assert_eq!(back.avenues, cfg.avenues);
    // Building from the round-tripped config yields the identical map.
    assert_same(&manhattan(&cfg), &manhattan(&back));
}
