//! The `vcount` subcommands.

use crate::args::Args;
use crate::{build_scenario, run_with_progress};
use vcount_roadnet::builders::{manhattan, ManhattanConfig};
use vcount_roadnet::travel_time_diameter;
use vcount_sim::{Goal, Scenario};

/// Top-level usage text.
pub const USAGE: &str = "\
vcount — infrastructure-less vehicle counting (ICPP 2014 reproduction)

USAGE:
  vcount scenario --preset closed|open [--volume PCT] [--seeds K]
                  [--rng SEED] [--out FILE]
      Emit a ready-to-run scenario JSON (midtown map, paper settings).

  vcount run SCENARIO.json [--goal constitution|collection] [--progress]
      Run a scenario to convergence and print the metrics as JSON.
      --progress streams wave progress to stderr.

  vcount map [--preset paper|small] [--speed-mph MPH]
      Build the synthetic midtown map and print its statistics.

  vcount help
      Show this text.";

/// `vcount scenario`.
pub fn scenario(args: &Args) -> Result<(), String> {
    let preset = args.flag("preset").unwrap_or("closed");
    let volume = args.flag_or("volume", 60.0)?;
    let seeds = args.flag_or("seeds", 1usize)?;
    let rng = args.flag_or("rng", 1u64)?;
    let s = build_scenario(preset, volume, seeds, rng)?;
    let json = serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?;
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `vcount run`.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("missing SCENARIO.json argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let goal = match args.flag("goal").unwrap_or("collection") {
        "constitution" => Goal::Constitution,
        "collection" => Goal::Collection,
        other => return Err(format!("unknown goal `{other}`")),
    };
    let metrics = run_with_progress(&scenario, goal, args.switch("progress"));
    println!(
        "{}",
        serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?
    );
    if metrics.oracle_violations > 0 {
        return Err(format!(
            "{} per-vehicle oracle violations — counting was not exact",
            metrics.oracle_violations
        ));
    }
    Ok(())
}

/// `vcount map`.
pub fn map(args: &Args) -> Result<(), String> {
    let base = match args.flag("preset").unwrap_or("paper") {
        "paper" => ManhattanConfig::default(),
        "small" => ManhattanConfig::small(),
        other => return Err(format!("unknown map preset `{other}`")),
    };
    let cfg = ManhattanConfig {
        speed_mph: args.flag_or("speed-mph", base.speed_mph)?,
        ..base
    };
    let net = manhattan(&cfg);
    let bounds = net.bounds().expect("non-empty map");
    println!("synthetic midtown map");
    println!("  intersections:       {}", net.node_count());
    println!("  directed segments:   {}", net.edge_count());
    println!(
        "  one-way share:       {:.0}%",
        net.one_way_fraction() * 100.0
    );
    println!(
        "  extent:              {:.0} m x {:.0} m",
        bounds.width(),
        bounds.height()
    );
    println!("  border checkpoints:  {}", net.border_nodes().len());
    println!(
        "  travel-time diameter: {:.1} min at {} mph",
        travel_time_diameter(&net, 37) / 60.0,
        cfg.speed_mph
    );
    Ok(())
}
