//! The `vcount` subcommands.

use crate::args::Args;
use crate::{build_scenario, drive, SnapshotCfg};
use std::io::Write;
use std::sync::{Arc, Mutex};
use vcount_obs::{EventFilter, EventSink, JsonlSink};
use vcount_roadnet::builders::{manhattan, ManhattanConfig};
use vcount_roadnet::travel_time_diameter;
use vcount_sim::runner::DEFAULT_RING_CAPACITY;
use vcount_sim::service::DEFAULT_QUEUE_CAPACITY;
use vcount_sim::{
    replay_trace, serve_connections, serve_stream, sweep_with_faults, ActionTrace, Conn,
    EngineSnapshot, FaultPlan, Goal, Listener, ObservationBatch, ObservationSource, RunManager,
    Runner, Scenario, ServiceConfig, ServiceRequest, ServiceResponse, SimulatorSource, SweepConfig,
    WireClient,
};

/// Top-level usage text.
pub const USAGE: &str = "\
vcount — infrastructure-less vehicle counting (ICPP 2014 reproduction)

USAGE:
  vcount scenario --preset closed|open|fig1 [--volume PCT] [--seeds K]
                  [--rng SEED] [--out FILE]
      Emit a ready-to-run scenario JSON (closed/open: midtown map, paper
      settings; fig1: the 3-intersection walkthrough of Fig. 1).

  vcount run SCENARIO.json [--goal constitution|collection] [--progress]
              [--trace FILE.jsonl] [--trace-filter KIND,KIND,...]
              [--snapshot-every N] [--snapshot-out FILE] [--faults PLAN.json]
              [--shards N] [--eager-decode]
      Run a scenario to convergence and print the metrics as JSON.
      --eager-decode disables the exchange's lazy decode, parsing even
      messages whose recipient is down — a decode-strategy knob only:
      the event stream, counts, and metrics are byte-identical; only the
      wire.decoded / wire.skipped_decode telemetry split changes.
      --shards N partitions the road graph into N regions driven by N
      worker shards — a throughput knob only: the event stream, counts,
      and metrics are byte-identical for every N (DESIGN.md §8bis).
      --progress streams wave progress to stderr. --trace streams every
      protocol event as JSON lines; --trace-filter restricts it to the
      named event kinds (e.g. label_emitted,report_sent).
      --snapshot-every N freezes the full engine state to a JSON snapshot
      every N simulation steps (overwriting --snapshot-out, default
      vcount-snapshot.json); a resumed run replays the identical event
      stream the uninterrupted run would have produced.
      --faults injects a deterministic fault plan (checkpoint crashes,
      channel blackouts, message chaos — see DESIGN.md §7). A run that
      provably lost protocol information reports `degraded: true` and
      still exits 0; oracle violations without the degraded flag are an
      error, exactly as without faults.
      --record-actions PATH records the run's full protocol-input stream
      (every action each checkpoint processed, with channel outcomes and
      timestamps frozen in) as a schema-tagged JSON trace for
      `vcount replay`.

  vcount run --resume SNAPSHOT.json [--goal G] [--progress] [--trace ...]
      Resume a run frozen by --snapshot-every. The snapshot embeds its
      scenario and any fault plan, so neither argument is given; --shards
      overrides the snapshot's shard count (sound, because the count never
      affects semantics). (--record-actions cannot resume: a trace must
      cover a whole run.)

  vcount replay TRACE.json
      Re-drive the pure protocol machines from an action trace recorded
      with `vcount run --record-actions` — no traffic simulator, channel,
      or RNG — and verify the dispatch stream and final per-checkpoint
      counts are byte-identical to the recording. Prints the replay
      report as JSON; exits nonzero on any divergence.

  vcount sweep [--volumes PCT,PCT,...] [--seed-counts K,K,...]
               [--replicates N] [--threads N] [--goal constitution|collection]
               [--map paper|small] [--open] [--rng SEED] [--out FILE]
               [--faults PLAN.json]
      Run the paper's evaluation grid (traffic volume x seed count) across
      worker threads (--threads 0 = all cores) and print the per-cell
      results as JSON. Defaults to the reduced CI grid on the small map;
      a cell whose worker panics is reported in its result's `failed`
      field without aborting the rest of the grid. --faults injects the
      same fault plan into every replicate; each cell reports how many
      replicates ended degraded.

  vcount serve [--socket PATH | --listen HOST:PORT] [--once | --max-conns N]
               [--queue-capacity N] [--pump-budget N]
      Run the vcountd multi-tenant service: newline-delimited JSON
      requests in, responses (protocol events included) out. Without a
      listener the service answers on stdin/stdout — `vcount serve <
      commands.jsonl` replays a recorded command stream. With --socket
      it listens on a Unix socket, with --listen on TCP (port 0 picks a
      free port; the bound address is printed to stderr) — both serve
      concurrent feeder connections, each on its own thread over the
      shared run manager. --once exits after one connection; --max-conns
      N exits after N (connections already accepted finish first, and
      every tenant's sinks are flushed on the way out). A feeder
      disconnecting mid-run leaves every tenant's sinks flushed and the
      runs alive for a reconnect. A malformed request — unparseable
      JSON, or a batch that violates the engine's indexing contracts —
      is answered with an Error response for that run only: it never
      kills the daemon or another tenant. --queue-capacity bounds each
      tenant's ingest queue (default 64); a batch arriving at a full
      queue gets an explicit Throttled response, never a silent drop.
      --pump-budget caps batches ingested per request (default: drain
      fully; 0 makes ingest manual via Pump requests).
      Transport is a deployment knob, never a semantics knob: a scenario
      driven through the service produces the byte-identical event
      stream and counts `vcount run` produces.

  vcount feed SCENARIO.json (--socket PATH | --connect HOST:PORT | --emit FILE)
              [--run ID] [--goal constitution|collection] [--shards N]
              [--eager-decode] [--faults PLAN.json] [--trace FILE.jsonl]
              [--server-trace FILE.jsonl]
      Drive a scenario through the service as a simulator-fed client:
      Start the run, push one observation batch per tick (resending
      after any Throttled backpressure), then Finish with ground truth
      and print the metrics JSON. --socket connects to a `vcount serve
      --socket` daemon, --connect to a `vcount serve --listen` TCP
      daemon; --emit instead serves an in-process manager and records
      the exact wire command stream to FILE for later `vcount serve <
      FILE` replay. --trace writes the returned protocol-event lines as
      JSONL, byte-identical to `vcount run --trace`; --server-trace asks
      the daemon to write the same trace on its side (flushed even if
      this feeder dies mid-run).

  vcount map [--preset paper|small] [--speed-mph MPH]
      Build the synthetic midtown map and print its statistics.

  vcount help
      Show this text.

Flags accept both `--key value` and `--key=value`.";

/// `vcount scenario`.
pub fn scenario(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["preset", "volume", "seeds", "rng", "out"])?;
    let preset = args.flag("preset").unwrap_or("closed");
    let volume = args.flag_or("volume", 60.0)?;
    let seeds = args.flag_or("seeds", 1usize)?;
    let rng = args.flag_or("rng", 1u64)?;
    let s = build_scenario(preset, volume, seeds, rng)?;
    let json = serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?;
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `vcount run`.
pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "goal",
        "progress",
        "trace",
        "trace-filter",
        "snapshot-every",
        "snapshot-out",
        "resume",
        "faults",
        "record-actions",
        "shards",
        "eager-decode",
    ])?;
    // 0 = unspecified: new runs default to one shard, resumes keep the
    // snapshot's count.
    let shards = args.flag_or("shards", 0usize)?;
    let eager_decode = args.switch("eager-decode");
    let goal = match args.flag("goal").unwrap_or("collection") {
        "constitution" => Goal::Constitution,
        "collection" => Goal::Collection,
        other => return Err(format!("unknown goal `{other}`")),
    };
    let trace_path = args.flag("trace");
    let filter = match (trace_path, args.flag("trace-filter")) {
        (Some(_), Some(spec)) => EventFilter::parse(spec)?,
        (Some(_), None) => EventFilter::all(),
        (None, Some(_)) => return Err("--trace-filter requires --trace".into()),
        (None, None) => EventFilter::all(),
    };
    let snapshot = match args.flag_parsed::<u64>("snapshot-every")? {
        Some(0) => return Err("--snapshot-every must be at least 1".into()),
        Some(every) => Some(SnapshotCfg {
            every,
            out: args
                .flag("snapshot-out")
                .unwrap_or("vcount-snapshot.json")
                .to_string(),
        }),
        None => {
            if args.flag("snapshot-out").is_some() {
                return Err("--snapshot-out requires --snapshot-every".into());
            }
            None
        }
    };
    let mut sinks: Vec<Box<dyn EventSink + Send>> = Vec::new();
    if let Some(trace) = trace_path {
        let sink = JsonlSink::to_file(std::path::Path::new(trace), filter)
            .map_err(|e| format!("{trace}: {e}"))?;
        sinks.push(Box::new(sink));
    }
    let faults = load_fault_plan(args)?;
    let record_path = args.flag("record-actions");
    let (mut runner, max_time_s) = match args.flag("resume") {
        Some(snap_path) => {
            if args.positional(0).is_some() {
                return Err(
                    "--resume takes no scenario argument (the snapshot embeds its scenario)".into(),
                );
            }
            if record_path.is_some() {
                return Err(
                    "--record-actions cannot be combined with --resume (an action trace must                      cover a whole run)"
                        .into(),
                );
            }
            if faults.is_some() {
                return Err(
                    "--faults cannot be combined with --resume (the snapshot embeds its fault plan)"
                        .into(),
                );
            }
            let text =
                std::fs::read_to_string(snap_path).map_err(|e| format!("{snap_path}: {e}"))?;
            let mut snap =
                EngineSnapshot::from_json(&text).map_err(|e| format!("{snap_path}: {e}"))?;
            if shards > 0 {
                // Safe to override: the shard count is a throughput knob,
                // never a semantics knob (DESIGN.md §8bis).
                snap.shards = shards;
            }
            let max = snap.scenario.max_time_s;
            (
                Runner::resume_with(&snap, sinks, DEFAULT_RING_CAPACITY),
                max,
            )
        }
        None => {
            let path = args.positional(0).ok_or("missing SCENARIO.json argument")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let scenario: Scenario =
                serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            let mut builder = Runner::builder(&scenario)
                .shards(shards.max(1))
                .record_actions(record_path.is_some());
            for sink in sinks {
                builder = builder.sink(sink);
            }
            if let Some(plan) = faults {
                builder = builder.faults(plan);
            }
            let runner = builder
                .eager_decode(eager_decode)
                .try_build()
                .map_err(|e| format!("fault plan: {e}"))?;
            (runner, scenario.max_time_s)
        }
    };
    if eager_decode {
        // On the resume path the knob is applied post-restore: the decode
        // strategy is not part of the snapshot.
        runner.set_eager_decode(true);
    }
    let metrics = drive(
        &mut runner,
        max_time_s,
        goal,
        args.switch("progress"),
        snapshot,
    )?;
    if let Some(trace) = trace_path {
        eprintln!("wrote event trace to {trace}");
    }
    if let Some(path) = record_path {
        let trace = runner
            .take_action_trace()
            .expect("recording was enabled at build time");
        std::fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote action trace to {path} ({} actions, dispatch digest {:#018x})",
            trace.records.len(),
            trace.dispatch_digest
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?
    );
    if metrics.degraded {
        eprintln!(
            "note: injected faults cost protocol information (degraded: true) — \
             the count is not guaranteed exact"
        );
    } else if metrics.oracle_violations > 0 {
        return Err(format!(
            "{} per-vehicle oracle violations — counting was not exact",
            metrics.oracle_violations
        ));
    }
    Ok(())
}

/// `vcount replay`.
pub fn replay(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let path = args.positional(0).ok_or("missing TRACE.json argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = ActionTrace::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let report = replay_trace(&trace).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );
    report
        .check()
        .map_err(|e| format!("machine-only replay diverged from the recording: {e}"))
}

/// Removes the Unix socket file on every exit path — clean shutdown,
/// accept-loop failure, or an error unwinding out of `serve` — so a dead
/// daemon never leaves a stale socket behind.
struct SocketCleanup<'a>(&'a str);

impl Drop for SocketCleanup<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(self.0);
    }
}

/// `vcount serve`.
pub fn serve(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "socket",
        "listen",
        "once",
        "max-conns",
        "queue-capacity",
        "pump-budget",
    ])?;
    let cfg = ServiceConfig {
        queue_capacity: args.flag_or("queue-capacity", DEFAULT_QUEUE_CAPACITY)?,
        pump_budget: args.flag_or("pump-budget", u64::MAX)?,
    };
    if cfg.queue_capacity == 0 {
        return Err("--queue-capacity must be at least 1".into());
    }
    let max_conns = match (args.switch("once"), args.flag_parsed::<u64>("max-conns")?) {
        (true, Some(_)) => return Err("--once and --max-conns are mutually exclusive".into()),
        (true, None) => Some(1),
        (false, Some(0)) => return Err("--max-conns must be at least 1".into()),
        (false, n) => n,
    };
    let mgr = Arc::new(Mutex::new(RunManager::new(cfg)));
    let listener = match (args.flag("socket"), args.flag("listen")) {
        (Some(_), Some(_)) => return Err("--socket and --listen are mutually exclusive".into()),
        (None, None) => {
            if max_conns.is_some() {
                return Err("--once/--max-conns require --socket or --listen".into());
            }
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            return serve_stream(&mgr, stdin.lock(), stdout.lock());
        }
        (Some(path), None) => Listener::bind_unix(path)?,
        (None, Some(addr)) => Listener::bind_tcp(addr)?,
    };
    // Installed immediately after a successful bind: whatever ends the
    // accept loop — connection limit, persistent accept failure, a panic —
    // the socket file is removed (a no-op for TCP).
    let _cleanup = args.flag("socket").map(SocketCleanup);
    eprintln!("vcountd listening on {}", listener.local_addr());
    serve_connections(&listener, &mgr, max_conns)
}

/// The feeder's connection to a service: a dialed socket (Unix or TCP,
/// via [`WireClient`]), or an in-process manager that additionally
/// records the exact wire command stream for later `vcount serve < FILE`
/// replay.
enum FeedTransport {
    InProcess {
        mgr: RunManager,
        emit: std::io::BufWriter<std::fs::File>,
    },
    Wire(WireClient),
}

impl FeedTransport {
    fn in_process(emit_path: &str) -> Result<Self, String> {
        Ok(FeedTransport::InProcess {
            mgr: RunManager::new(ServiceConfig::default()),
            emit: std::io::BufWriter::new(
                std::fs::File::create(emit_path).map_err(|e| format!("{emit_path}: {e}"))?,
            ),
        })
    }

    fn socket(path: &str) -> Result<Self, String> {
        WireClient::new(Conn::connect_unix(path)?).map(FeedTransport::Wire)
    }

    fn tcp(addr: &str) -> Result<Self, String> {
        WireClient::new(Conn::connect_tcp(addr)?).map(FeedTransport::Wire)
    }

    /// Sends one request and collects its full answer: zero or more Event
    /// lines closed by exactly one terminal response (the wire framing
    /// contract).
    fn call(&mut self, req: &ServiceRequest) -> Result<Vec<ServiceResponse>, String> {
        match self {
            FeedTransport::InProcess { mgr, emit } => {
                // Record the exact wire line, then hand that same line to
                // the manager through the parse path `vcount serve` uses —
                // the emitted file replays byte-identically.
                let json = serde_json::to_string(req).map_err(|e| e.to_string())?;
                writeln!(emit, "{json}").map_err(|e| format!("emit: {e}"))?;
                let mut out = Vec::new();
                mgr.handle_line(&json, &mut out);
                Ok(out)
            }
            FeedTransport::Wire(client) => client.call(req),
        }
    }

    /// Flushes the recorded command stream (in-process mode), disconnects
    /// otherwise.
    fn close(self) -> Result<(), String> {
        match self {
            FeedTransport::InProcess { mut emit, .. } => {
                emit.flush().map_err(|e| format!("emit: {e}"))
            }
            FeedTransport::Wire(_) => Ok(()),
        }
    }
}

/// Sifts one request's responses: Event lines go to the trace file,
/// Errors abort, and the single terminal response is returned.
fn sift_responses(
    responses: Vec<ServiceResponse>,
    trace: &mut Option<std::io::BufWriter<std::fs::File>>,
) -> Result<ServiceResponse, String> {
    let mut terminal = None;
    for resp in responses {
        match resp {
            ServiceResponse::Event { line, .. } => {
                if let Some(t) = trace {
                    writeln!(t, "{line}").map_err(|e| format!("trace: {e}"))?;
                }
            }
            ServiceResponse::Error { run, message } => {
                return Err(format!("service error for run {run:?}: {message}"));
            }
            other => terminal = Some(other),
        }
    }
    terminal.ok_or_else(|| "service sent no terminal response".into())
}

/// `vcount feed`.
pub fn feed(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "run",
        "goal",
        "shards",
        "eager-decode",
        "faults",
        "emit",
        "socket",
        "connect",
        "trace",
        "server-trace",
    ])?;
    // Destination flags are validated before any filesystem access so a
    // bad invocation is reported as such, not as a missing file.
    enum Dest<'a> {
        Emit(&'a str),
        Socket(&'a str),
        Tcp(&'a str),
    }
    let dest = match (args.flag("emit"), args.flag("socket"), args.flag("connect")) {
        (Some(emit), None, None) => Dest::Emit(emit),
        (None, Some(sock), None) => Dest::Socket(sock),
        (None, None, Some(addr)) => Dest::Tcp(addr),
        (None, None, None) => {
            return Err(
                "feed needs a destination: --socket PATH, --connect HOST:PORT, or --emit FILE"
                    .into(),
            )
        }
        _ => return Err("--emit, --socket, and --connect are mutually exclusive".into()),
    };
    let path = args.positional(0).ok_or("missing SCENARIO.json argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let run = args.flag("run").unwrap_or("run-1").to_string();
    let goal = match args.flag("goal").unwrap_or("collection") {
        "constitution" => Goal::Constitution,
        "collection" => Goal::Collection,
        other => return Err(format!("unknown goal `{other}`")),
    };
    let shards = args.flag_or("shards", 0usize)?;
    let eager_decode = args.switch("eager-decode");
    let faults = load_fault_plan(args)?;
    let mut client = match dest {
        Dest::Emit(emit) => FeedTransport::in_process(emit)?,
        Dest::Socket(sock) => FeedTransport::socket(sock)?,
        Dest::Tcp(addr) => FeedTransport::tcp(addr)?,
    };
    let mut trace = match args.flag("trace") {
        Some(p) => Some(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| format!("{p}: {e}"))?,
        )),
        None => None,
    };

    // The feeder owns the traffic substrate; the service owns the engine.
    let mut source = SimulatorSource::from_scenario(&scenario, shards.max(1));
    let start = ServiceRequest::Start {
        run: run.clone(),
        scenario: Box::new(scenario),
        goal: Some(goal),
        shards,
        eager_decode,
        faults,
        trace: args.flag("server-trace").map(String::from),
    };
    match sift_responses(client.call(&start)?, &mut trace)? {
        ServiceResponse::Started { .. } => {}
        other => return Err(format!("service answered Start with {other:?}")),
    }

    let mut batch = ObservationBatch::default();
    let mut done = false;
    while !done && source.next_batch(&mut batch) {
        loop {
            let responses = client.call(&ServiceRequest::Observe {
                run: run.clone(),
                batch: batch.clone(),
            })?;
            match sift_responses(responses, &mut trace)? {
                ServiceResponse::Accepted { done: d, .. } => {
                    done = d;
                    break;
                }
                // Explicit backpressure: ask the service to drain, then
                // resend the same batch — it was not enqueued.
                ServiceResponse::Throttled { .. } => {
                    sift_responses(
                        client.call(&ServiceRequest::Pump { budget: None })?,
                        &mut trace,
                    )?;
                }
                other => return Err(format!("service answered Observe with {other:?}")),
            }
        }
    }

    let truth = source.truth();
    let responses = client.call(&ServiceRequest::Finish { run, truth })?;
    let metrics = match sift_responses(responses, &mut trace)? {
        ServiceResponse::Finished { metrics, .. } => metrics,
        other => return Err(format!("service answered Finish with {other:?}")),
    };
    client.close()?;
    if let Some(mut t) = trace {
        t.flush().map_err(|e| format!("trace: {e}"))?;
    }
    if let Some(p) = args.flag("trace") {
        eprintln!("wrote event trace to {p}");
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?
    );
    if metrics.degraded {
        eprintln!(
            "note: injected faults cost protocol information (degraded: true) — \
             the count is not guaranteed exact"
        );
    } else if metrics.oracle_violations > 0 {
        return Err(format!(
            "{} per-vehicle oracle violations — counting was not exact",
            metrics.oracle_violations
        ));
    }
    Ok(())
}

/// Reads and parses `--faults PLAN.json`, if given. Structural validation
/// against the scenario happens in [`vcount_sim::RunnerBuilder::try_build`].
fn load_fault_plan(args: &Args) -> Result<Option<FaultPlan>, String> {
    match args.flag("faults") {
        None => Ok(None),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            FaultPlan::from_json(&text)
                .map(Some)
                .map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// `vcount sweep`.
pub fn sweep(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[
        "volumes",
        "seed-counts",
        "replicates",
        "threads",
        "goal",
        "map",
        "open",
        "rng",
        "out",
        "faults",
    ])?;
    let quick = SweepConfig::quick();
    let cfg = SweepConfig {
        volumes: match args.flag("volumes") {
            Some(spec) => parse_list(spec, "volumes")?,
            None => quick.volumes,
        },
        seed_counts: match args.flag("seed-counts") {
            Some(spec) => parse_list(spec, "seed-counts")?,
            None => quick.seed_counts,
        },
        replicates: args.flag_or("replicates", quick.replicates)?,
        threads: args.flag_or("threads", 0usize)?,
    };
    if cfg.volumes.is_empty() || cfg.seed_counts.is_empty() {
        return Err("sweep grid is empty".into());
    }
    let goal = match args.flag("goal").unwrap_or("constitution") {
        "constitution" => Goal::Constitution,
        "collection" => Goal::Collection,
        other => return Err(format!("unknown goal `{other}`")),
    };
    let map = match args.flag("map").unwrap_or("small") {
        "paper" => ManhattanConfig::default(),
        "small" => ManhattanConfig::small(),
        other => return Err(format!("unknown map preset `{other}`")),
    };
    let open = args.switch("open");
    let rng = args.flag_or("rng", 1u64)?;
    let faults = load_fault_plan(args)?;

    let cells = cfg.volumes.len() * cfg.seed_counts.len();
    eprintln!(
        "sweeping {cells} cells x {} replicates on {} threads...",
        cfg.replicates,
        if cfg.threads == 0 {
            "all".to_string()
        } else {
            cfg.threads.to_string()
        }
    );
    let results = sweep_with_faults(&cfg, goal, faults, |cell, rep| {
        let seed = rng
            .wrapping_mul(1_000_003)
            .wrapping_add(rep.wrapping_mul(7919))
            .wrapping_add((cell.volume_pct as u64) << 16)
            .wrapping_add(cell.seeds as u64);
        if open {
            Scenario::paper_open(map.clone(), cell.volume_pct, cell.seeds, seed)
        } else {
            Scenario::paper_closed(map.clone(), cell.volume_pct, cell.seeds, seed)
        }
    });

    for r in &results {
        let mut status = match &r.failed {
            Some(msg) => format!("FAILED: {msg}"),
            None => match r.constitution_min {
                Some(s) => format!("constitution mean {:.1} min", s.mean),
                None => "unconverged".to_string(),
            },
        };
        if r.degraded > 0 {
            status.push_str(&format!(" ({} degraded)", r.degraded));
        }
        eprintln!(
            "  volume {:>5.1}% seeds {:>2}: {status}",
            r.cell.volume_pct, r.cell.seeds
        );
    }
    let failed = results.iter().filter(|r| r.failed.is_some()).count();
    let json = serde_json::to_string_pretty(&results).map_err(|e| e.to_string())?;
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if failed > 0 {
        return Err(format!("{failed} sweep cell(s) failed"));
    }
    Ok(())
}

/// Parses a comma-separated numeric list.
fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad {what} entry `{s}`"))
        })
        .collect()
}

/// `vcount map`.
pub fn map(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["preset", "speed-mph", "stats"])?;
    let base = match args.flag("preset").unwrap_or("paper") {
        "paper" => ManhattanConfig::default(),
        "small" => ManhattanConfig::small(),
        other => return Err(format!("unknown map preset `{other}`")),
    };
    let cfg = ManhattanConfig {
        speed_mph: args.flag_or("speed-mph", base.speed_mph)?,
        ..base
    };
    let net = manhattan(&cfg);
    let bounds = net.bounds().expect("non-empty map");
    println!("synthetic midtown map");
    println!("  intersections:       {}", net.node_count());
    println!("  directed segments:   {}", net.edge_count());
    println!(
        "  one-way share:       {:.0}%",
        net.one_way_fraction() * 100.0
    );
    println!(
        "  extent:              {:.0} m x {:.0} m",
        bounds.width(),
        bounds.height()
    );
    println!("  border checkpoints:  {}", net.border_nodes().len());
    println!(
        "  travel-time diameter: {:.1} min at {} mph",
        travel_time_diameter(&net, 37) / 60.0,
        cfg.speed_mph
    );
    Ok(())
}
