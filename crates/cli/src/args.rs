//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed positionals + `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand). `--key value` pairs become
    /// flags; a trailing `--key` with no value (or followed by another
    /// flag) is a boolean switch.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare `--` is not a flag".into());
                }
                let next_is_value = argv.get(i + 1).is_some_and(|n| !n.starts_with("--"));
                if next_is_value {
                    out.flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// The `n`-th positional argument.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// A string flag value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed flag value with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_flags_and_switches() {
        let a = Args::parse(&argv(&[
            "scenario.json",
            "--goal",
            "collection",
            "--progress",
            "--volume",
            "60",
        ]))
        .unwrap();
        assert_eq!(a.positional(0), Some("scenario.json"));
        assert_eq!(a.flag("goal"), Some("collection"));
        assert!(a.switch("progress"));
        assert_eq!(a.flag_or("volume", 0.0).unwrap(), 60.0);
        assert_eq!(a.flag_or("seeds", 3usize).unwrap(), 3);
    }

    #[test]
    fn invalid_number_is_an_error() {
        let a = Args::parse(&argv(&["--volume", "sixty"])).unwrap();
        assert!(a.flag_or::<f64>("volume", 1.0).is_err());
    }

    #[test]
    fn switch_before_flag_is_not_swallowed() {
        let a = Args::parse(&argv(&["--progress", "--goal", "constitution"])).unwrap();
        assert!(a.switch("progress"));
        assert_eq!(a.flag("goal"), Some("constitution"));
    }
}
