//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed positionals + `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand). `--key value` and
    /// `--key=value` pairs become flags; a trailing `--key` with no value
    /// (or followed by another flag) is a boolean switch. Values that
    /// themselves start with `--` must use the `--key=value` form —
    /// `--delta --5` reads `--5` as a (malformed) flag, not a value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare `--` is not a flag".into());
                }
                if let Some((key, value)) = key.split_once('=') {
                    if key.is_empty() {
                        return Err(format!("missing flag name in `{a}`"));
                    }
                    out.flags.insert(key.to_string(), value.to_string());
                    i += 1;
                    continue;
                }
                let next_is_value = argv.get(i + 1).is_some_and(|n| !n.starts_with("--"));
                if next_is_value {
                    out.flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// The `n`-th positional argument.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// A string flag value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A typed flag value: `Ok(None)` when absent, `Err` when present but
    /// unparseable.
    pub fn flag_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// A parsed flag value with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.flag_parsed(key)?.unwrap_or(default))
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Errors on any flag or switch not in `known` — typos fail loudly
    /// instead of being silently ignored.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for key in self.flags.keys().chain(self.switches.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag `--{key}`"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_flags_and_switches() {
        let a = Args::parse(&argv(&[
            "scenario.json",
            "--goal",
            "collection",
            "--progress",
            "--volume",
            "60",
        ]))
        .unwrap();
        assert_eq!(a.positional(0), Some("scenario.json"));
        assert_eq!(a.flag("goal"), Some("collection"));
        assert!(a.switch("progress"));
        assert_eq!(a.flag_or("volume", 0.0).unwrap(), 60.0);
        assert_eq!(a.flag_or("seeds", 3usize).unwrap(), 3);
    }

    #[test]
    fn invalid_number_is_an_error() {
        let a = Args::parse(&argv(&["--volume", "sixty"])).unwrap();
        assert!(a.flag_or::<f64>("volume", 1.0).is_err());
    }

    #[test]
    fn switch_before_flag_is_not_swallowed() {
        let a = Args::parse(&argv(&["--progress", "--goal", "constitution"])).unwrap();
        assert!(a.switch("progress"));
        assert_eq!(a.flag("goal"), Some("constitution"));
    }

    #[test]
    fn equals_syntax_parses_and_allows_dashed_values() {
        let a = Args::parse(&argv(&["--goal=collection", "--filter=--weird--"])).unwrap();
        assert_eq!(a.flag("goal"), Some("collection"));
        // The historical gap: a value starting with `--` is only reachable
        // through the `=` form.
        assert_eq!(a.flag("filter"), Some("--weird--"));
        // Empty value via `=` is a present-but-empty flag, not a switch.
        let b = Args::parse(&argv(&["--out="])).unwrap();
        assert_eq!(b.flag("out"), Some(""));
        assert!(!b.switch("out"));
    }

    #[test]
    fn missing_flag_name_before_equals_is_an_error() {
        assert!(Args::parse(&argv(&["--=5"])).is_err());
        assert!(Args::parse(&argv(&["--"])).is_err());
    }

    #[test]
    fn flag_parsed_distinguishes_absent_from_bad() {
        let a = Args::parse(&argv(&["--seeds", "four"])).unwrap();
        assert_eq!(a.flag_parsed::<u64>("rng"), Ok(None));
        assert!(a.flag_parsed::<usize>("seeds").is_err());
        let b = Args::parse(&argv(&["--seeds=4"])).unwrap();
        assert_eq!(b.flag_parsed::<usize>("seeds"), Ok(Some(4)));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = Args::parse(&argv(&["--goal", "collection", "--porgress"])).unwrap();
        assert!(a
            .reject_unknown(&["goal"])
            .unwrap_err()
            .contains("porgress"));
        assert!(a.reject_unknown(&["goal", "porgress"]).is_ok());
    }
}
