//! `vcount` — command-line front end for the infrastructure-less vehicle
//! counting reproduction.
//!
//! ```text
//! vcount scenario --preset closed|open|fig1 [--volume N] [--seeds K] [--rng R] [--out FILE]
//! vcount run SCENARIO.json [--goal constitution|collection] [--progress]
//!             [--trace FILE.jsonl] [--trace-filter KINDS]
//!             [--snapshot-every N] [--snapshot-out FILE] [--faults PLAN.json]
//!             [--shards N]
//! vcount run --resume SNAPSHOT.json [--goal G] [--progress] [--trace ...]
//! vcount replay TRACE.json
//! vcount sweep [--volumes PCTS] [--seed-counts KS] [--replicates N]
//!             [--threads N] [--goal G] [--map paper|small] [--open]
//!             [--faults PLAN.json]
//! vcount serve [--socket PATH] [--once] [--queue-capacity N] [--pump-budget N]
//! vcount feed SCENARIO.json (--socket PATH | --emit FILE) [--run ID]
//!             [--goal G] [--trace FILE.jsonl]
//! vcount map --preset manhattan|small [--stats]
//! vcount help
//! ```

use std::process::ExitCode;
use vcount_roadnet::builders::ManhattanConfig;
use vcount_sim::{Goal, Runner, Scenario};

mod args;
mod commands;

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("missing subcommand".into());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "scenario" => commands::scenario(&args),
        "run" => commands::run(&args),
        "replay" => commands::replay(&args),
        "serve" => commands::serve(&args),
        "feed" => commands::feed(&args),
        "sweep" => commands::sweep(&args),
        "map" => commands::map(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Shared helpers for subcommands.
pub(crate) fn build_scenario(
    preset: &str,
    volume: f64,
    seeds: usize,
    rng: u64,
) -> Result<Scenario, String> {
    let map = ManhattanConfig::default();
    match preset {
        "closed" => Ok(Scenario::paper_closed(map, volume, seeds, rng)),
        "open" => Ok(Scenario::paper_open(map, volume, seeds, rng)),
        "fig1" => Ok(Scenario::fig1_walkthrough(rng)),
        other => Err(format!("unknown preset `{other}` (want closed|open|fig1)")),
    }
}

/// Periodic snapshotting configuration for [`drive`].
pub(crate) struct SnapshotCfg {
    /// Write a snapshot every this many simulation steps.
    pub every: u64,
    /// Snapshot file path; overwritten on each write (latest wins).
    pub out: String,
}

pub(crate) fn drive(
    runner: &mut Runner,
    max_time_s: f64,
    goal: Goal,
    progress: bool,
    snapshot: Option<SnapshotCfg>,
) -> Result<vcount_sim::RunMetrics, String> {
    if !progress && snapshot.is_none() {
        return Ok(runner.run(goal, max_time_s));
    }
    // Re-implement the run loop with periodic progress lines and/or
    // snapshot writes.
    let mut next_tick = 0.0;
    let mut steps_since_snap = 0u64;
    loop {
        runner.step();
        if let Some(cfg) = &snapshot {
            steps_since_snap += 1;
            if steps_since_snap >= cfg.every {
                steps_since_snap = 0;
                std::fs::write(&cfg.out, runner.snapshot().to_json())
                    .map_err(|e| format!("{}: {e}", cfg.out))?;
            }
        }
        if progress && runner.time_s() >= next_tick {
            let p = runner.progress();
            eprintln!(
                "t={:>6.1}min active={}/{} stable={}/{} count={} truth={}",
                p.time_s / 60.0,
                p.active,
                p.checkpoints,
                p.stable,
                p.checkpoints,
                p.distributed_count,
                p.population
            );
            next_tick = runner.time_s() + 300.0;
        }
        let done = match goal {
            Goal::Constitution => runner.all_stable(),
            Goal::Collection => {
                runner.all_stable() && runner.all_collected() && !runner.reports_in_flight()
            }
        };
        if done || runner.time_s() >= max_time_s {
            break;
        }
    }
    runner.flush_sinks();
    Ok(runner.metrics_now())
}
