//! Drive the `vcount` binary end to end through its public interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vcount"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vcount scenario"));
    assert!(text.contains("vcount run"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn map_stats_report_the_paper_map() {
    let out = bin().args(["map", "--preset", "paper"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("intersections:       444"), "got: {text}");
    assert!(text.contains("border checkpoints"));
}

#[test]
fn scenario_then_run_round_trips() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.json");
    let out = bin()
        .args([
            "scenario",
            "--preset",
            "closed",
            "--volume",
            "80",
            "--seeds",
            "3",
            "--rng",
            "5",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["run", path.to_str().unwrap(), "--goal", "constitution"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("run prints metrics JSON");
    assert_eq!(metrics["oracle_violations"], 0);
    assert_eq!(metrics["global_count"], metrics["true_population"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_rejects_missing_file() {
    let out = bin()
        .args(["run", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
