//! Drive the `vcount` binary end to end through its public interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vcount"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vcount scenario"));
    assert!(text.contains("vcount run"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn map_stats_report_the_paper_map() {
    let out = bin().args(["map", "--preset", "paper"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("intersections:       444"), "got: {text}");
    assert!(text.contains("border checkpoints"));
}

#[test]
fn scenario_then_run_round_trips() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.json");
    let out = bin()
        .args([
            "scenario",
            "--preset",
            "closed",
            "--volume",
            "80",
            "--seeds",
            "3",
            "--rng",
            "5",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["run", path.to_str().unwrap(), "--goal", "constitution"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("run prints metrics JSON");
    assert_eq!(metrics["oracle_violations"], 0);
    assert_eq!(metrics["global_count"], metrics["true_population"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_rejects_missing_file() {
    let out = bin()
        .args(["run", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_is_rejected() {
    let out = bin()
        .args(["map", "--preset", "paper", "--porgress"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag `--porgress`"), "got: {err}");
}

#[test]
fn trace_filter_without_trace_is_rejected() {
    let out = bin()
        .args(["run", "x.json", "--trace-filter=label_emitted"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--trace-filter requires --trace"),
        "got: {err}"
    );
}

#[test]
fn fig1_preset_runs_with_event_trace() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("fig1.json");
    let trace = dir.join("trace.jsonl");
    let out = bin()
        .args([
            "scenario",
            "--preset=fig1",
            "--rng=7",
            "--out",
            scenario.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "run",
            scenario.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--trace-filter",
            "checkpoint_activated,label_emitted,report_sent",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let rec: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
        kinds.insert(rec["kind"].as_str().unwrap().to_string());
        assert!(
            rec["t"].as_f64().is_some(),
            "events carry sim time: {rec:?}"
        );
    }
    assert!(
        kinds.contains("checkpoint_activated"),
        "got kinds: {kinds:?}"
    );
    assert!(kinds.contains("label_emitted"));
    for k in &kinds {
        assert!(
            ["checkpoint_activated", "label_emitted", "report_sent"].contains(&k.as_str()),
            "filter leaked kind {k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
