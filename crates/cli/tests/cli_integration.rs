//! Drive the `vcount` binary end to end through its public interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vcount"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vcount scenario"));
    assert!(text.contains("vcount run"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "CLI errors exit with code 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown subcommand `frobnicate`"),
        "got: {err}"
    );
    assert!(err.contains("USAGE"));
    assert!(err.contains("vcount serve"), "usage lists service mode");
}

#[test]
fn missing_subcommand_fails_with_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(1), "CLI errors exit with code 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"), "got: {err}");
    assert!(err.contains("USAGE"));
    assert!(
        out.stdout.is_empty(),
        "usage goes to stderr on error, not stdout"
    );
}

#[test]
fn map_stats_report_the_paper_map() {
    let out = bin().args(["map", "--preset", "paper"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("intersections:       444"), "got: {text}");
    assert!(text.contains("border checkpoints"));
}

#[test]
fn scenario_then_run_round_trips() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.json");
    let out = bin()
        .args([
            "scenario",
            "--preset",
            "closed",
            "--volume",
            "80",
            "--seeds",
            "3",
            "--rng",
            "5",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["run", path.to_str().unwrap(), "--goal", "constitution"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("run prints metrics JSON");
    assert_eq!(metrics["oracle_violations"], 0);
    assert_eq!(metrics["global_count"], metrics["true_population"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_rejects_missing_file() {
    let out = bin()
        .args(["run", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_is_rejected() {
    let out = bin()
        .args(["map", "--preset", "paper", "--porgress"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag `--porgress`"), "got: {err}");
}

#[test]
fn trace_filter_without_trace_is_rejected() {
    let out = bin()
        .args(["run", "x.json", "--trace-filter=label_emitted"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--trace-filter requires --trace"),
        "got: {err}"
    );
}

/// The service contract, end to end through the binary: a simulator-fed
/// client driven through the service (in-process manager recording the
/// wire commands, then a real `vcount serve` stdin replay of those same
/// bytes) produces the byte-identical event trace `vcount run` produces.
#[test]
fn feed_then_serve_replay_match_batch_run() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("fig1.json");
    let run_trace = dir.join("run.jsonl");
    let feed_trace = dir.join("feed.jsonl");
    let cmds = dir.join("cmds.jsonl");

    let out = bin()
        .args(["scenario", "--preset=fig1", "--rng=11", "--out"])
        .arg(&scenario)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["run", scenario.to_str().unwrap(), "--trace"])
        .arg(&run_trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batch_metrics: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();

    let out = bin()
        .args(["feed", scenario.to_str().unwrap(), "--emit"])
        .arg(&cmds)
        .arg("--trace")
        .arg(&feed_trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let feed_metrics: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();

    let run_lines = std::fs::read_to_string(&run_trace).unwrap();
    let feed_lines = std::fs::read_to_string(&feed_trace).unwrap();
    assert!(!run_lines.is_empty());
    assert_eq!(
        run_lines, feed_lines,
        "service-fed event trace must be byte-identical to the batch run"
    );
    assert_eq!(batch_metrics["global_count"], feed_metrics["global_count"]);
    assert_eq!(feed_metrics["oracle_violations"], 0);

    // Replay the recorded command stream through the real stdin transport.
    let out = bin()
        .arg("serve")
        .stdin(std::fs::File::open(&cmds).unwrap())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut replay_lines = String::new();
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        let resp: serde_json::Value = serde_json::from_str(line).expect("response is JSON");
        let ev = &resp["Event"]["line"];
        if let Some(ev_line) = ev.as_str() {
            replay_lines.push_str(ev_line);
            replay_lines.push('\n');
        }
    }
    assert_eq!(
        run_lines, replay_lines,
        "stdin-transport replay must be byte-identical to the batch run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns the daemon and returns it along with the address it printed;
/// reading the banner doubles as the "bind finished" barrier.
fn spawn_daemon(args: &[&str]) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = bin()
        .arg("serve")
        .args(args)
        .stdin(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    std::io::BufReader::new(child.stderr.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .trim()
        .strip_prefix("vcountd listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {banner:?}"))
        .to_string();
    (child, addr)
}

/// A `--socket --once` daemon serves one feeder and then removes its
/// socket file on the way out — a dead daemon never leaves a stale
/// socket behind (the cleanup guard runs on every exit path).
#[test]
fn serve_once_cleans_up_socket_file() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("fig1.json");
    let sock = dir.join("vcountd.sock");
    let out = bin()
        .args(["scenario", "--preset=fig1", "--rng=21", "--out"])
        .arg(&scenario)
        .output()
        .unwrap();
    assert!(out.status.success());

    let (mut daemon, addr) = spawn_daemon(&["--socket", sock.to_str().unwrap(), "--once"]);
    assert_eq!(addr, sock.to_str().unwrap());
    assert!(sock.exists(), "daemon bound but socket file is missing");

    let out = bin()
        .args(["feed", scenario.to_str().unwrap(), "--socket"])
        .arg(&sock)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(metrics["oracle_violations"], 0);
    assert_eq!(metrics["global_count"], metrics["true_population"]);

    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    assert!(
        !sock.exists(),
        "daemon exited without cleaning up its socket file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The TCP transport end to end: `serve --listen 127.0.0.1:0` prints the
/// ephemeral port it bound, `feed --connect` drives a run through it, and
/// the returned event trace is byte-identical to `vcount run --trace`.
#[test]
fn serve_listen_feed_connect_matches_batch_run() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("fig1.json");
    let run_trace = dir.join("run.jsonl");
    let feed_trace = dir.join("feed.jsonl");
    let out = bin()
        .args(["scenario", "--preset=fig1", "--rng=23", "--out"])
        .arg(&scenario)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["run", scenario.to_str().unwrap(), "--trace"])
        .arg(&run_trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batch_metrics: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();

    let (mut daemon, addr) = spawn_daemon(&["--listen", "127.0.0.1:0", "--once"]);
    let out = bin()
        .args([
            "feed",
            scenario.to_str().unwrap(),
            "--connect",
            &addr,
            "--trace",
        ])
        .arg(&feed_trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let feed_metrics: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert!(daemon.wait().unwrap().success());

    let run_lines = std::fs::read_to_string(&run_trace).unwrap();
    let feed_lines = std::fs::read_to_string(&feed_trace).unwrap();
    assert!(!run_lines.is_empty());
    assert_eq!(
        run_lines, feed_lines,
        "TCP-fed event trace must be byte-identical to the batch run"
    );
    assert_eq!(batch_metrics["global_count"], feed_metrics["global_count"]);
    assert_eq!(feed_metrics["oracle_violations"], 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_combinations_are_validated() {
    for (args, want) in [
        (
            &[
                "serve",
                "--once",
                "--max-conns",
                "2",
                "--listen",
                "127.0.0.1:0",
            ][..],
            "--once and --max-conns are mutually exclusive",
        ),
        (
            &["serve", "--max-conns", "0", "--listen", "127.0.0.1:0"][..],
            "--max-conns must be at least 1",
        ),
        (
            &["serve", "--once"][..],
            "--once/--max-conns require --socket or --listen",
        ),
        (
            &[
                "serve",
                "--socket",
                "/tmp/x.sock",
                "--listen",
                "127.0.0.1:0",
            ][..],
            "--socket and --listen are mutually exclusive",
        ),
        (
            &["feed", "x.json", "--emit", "a.jsonl", "--socket", "b.sock"][..],
            "--emit, --socket, and --connect are mutually exclusive",
        ),
        (&["feed", "x.json"][..], "feed needs a destination"),
    ] {
        let out = bin().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(want), "{args:?} gave: {err}");
    }
}

#[test]
fn fig1_preset_runs_with_event_trace() {
    let dir = std::env::temp_dir().join(format!("vcount-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = dir.join("fig1.json");
    let trace = dir.join("trace.jsonl");
    let out = bin()
        .args([
            "scenario",
            "--preset=fig1",
            "--rng=7",
            "--out",
            scenario.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "run",
            scenario.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--trace-filter",
            "checkpoint_activated,label_emitted,report_sent",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let rec: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
        kinds.insert(rec["kind"].as_str().unwrap().to_string());
        assert!(
            rec["t"].as_f64().is_some(),
            "events carry sim time: {rec:?}"
        );
    }
    assert!(
        kinds.contains("checkpoint_activated"),
        "got kinds: {kinds:?}"
    );
    assert!(kinds.contains("label_emitted"));
    for k in &kinds {
        assert!(
            ["checkpoint_activated", "label_emitted", "report_sent"].contains(&k.as_str()),
            "filter leaked kind {k}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
