//! # vcount — infrastructure-less vehicle counting without disruption
//!
//! A full Rust reproduction of Wu, Sabatino, Tsan, Jiang — *An
//! Infrastructure-less Vehicle Counting without Disruption* (ICPP 2014,
//! DOI 10.1109/ICPP.2014.61): a fully-distributed, Chandy–Lamport-style
//! protocol that counts every moving vehicle in a target region **exactly
//! once** using only intersection surveillance and V2V/V2I exchanges with
//! the passing traffic — no VINs, no central database, no global
//! infrastructure.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`roadnet`] — road graphs, the synthetic midtown-Manhattan map,
//!   routing, patrol cycles (Theorem 4);
//! * [`v2x`] — VANET identities, wire messages, lossy channels, overtake
//!   collaboration;
//! * [`traffic`] — the deterministic traffic microsimulator (SUMO
//!   substitute);
//! * [`core`] — the checkpoint state machine (Algorithms 1–5);
//! * [`sim`] — orchestration, the ground-truth oracle, and the evaluation
//!   sweeps behind the paper's Figures 2–5.
//!
//! ## Quickstart
//!
//! ```
//! use vcount::prelude::*;
//!
//! // A small closed road system with one seed checkpoint.
//! let scenario = Scenario {
//!     map: MapSpec::Grid { cols: 3, rows: 3, spacing_m: 150.0, lanes: 2, speed_mps: 9.0 },
//!     closed: true,
//!     sim: SimConfig { seed: 42, ..Default::default() },
//!     demand: Demand::at_volume(50.0),
//!     protocol: CheckpointConfig::default(),
//!     channel: ChannelKind::PAPER, // the paper's 30% lossy channel
//!     seeds: SeedSpec::Random { count: 1 },
//!     transport: TransportMode::default(),
//!     patrol: PatrolSpec::default(),
//!     max_time_s: 3600.0,
//! };
//! let mut runner = Runner::builder(&scenario).build();
//! let metrics = runner.run(Goal::Collection, scenario.max_time_s);
//! assert_eq!(metrics.oracle_violations, 0); // no mis- or double-counting
//! assert_eq!(metrics.global_count, Some(metrics.true_population as i64));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vcount_core as core;
pub use vcount_roadnet as roadnet;
pub use vcount_sim as sim;
pub use vcount_traffic as traffic;
pub use vcount_v2x as v2x;

/// Everything needed to describe and run a counting deployment.
pub mod prelude {
    pub use vcount_core::{CheckpointConfig, ProtocolVariant};
    pub use vcount_roadnet::builders::{ManhattanConfig, RandomCityConfig};
    pub use vcount_roadnet::{NodeId, RoadNetwork};
    pub use vcount_sim::{
        Cell, Goal, MapSpec, PatrolSpec, RunMetrics, Runner, Scenario, SeedSpec, SweepConfig,
        TransportMode,
    };
    pub use vcount_traffic::{Demand, SimConfig};
    pub use vcount_v2x::{ChannelKind, ClassFilter};
}
