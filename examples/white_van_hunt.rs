//! "Does anyone see that white van?" — the paper's specified-type counting
//! extension, motivated by the 2002 Beltway sniper search: count exactly
//! the white vans in midtown without touching any ownership data.
//!
//! Run with: `cargo run --release --example white_van_hunt`

use vcount::prelude::*;
use vcount::roadnet::builders::ManhattanConfig;

fn main() {
    let map = ManhattanConfig::small();
    let scenario = Scenario {
        map: MapSpec::Manhattan(map),
        closed: true,
        sim: SimConfig {
            seed: 1030,
            ..Default::default()
        },
        demand: Demand {
            volume_pct: 60.0,
            white_van_fraction: 0.08, // ~8% of traffic is the target type
            ..Demand::default()
        },
        protocol: CheckpointConfig {
            // Surveillance filters on exterior characteristics only:
            // color=white, body=van, any brand. No VIN, no registration.
            filter: ClassFilter::white_vans(),
            ..CheckpointConfig::default()
        },
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 2 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    };

    let mut runner = Runner::builder(&scenario).build();
    let metrics = runner.run(Goal::Collection, scenario.max_time_s);

    let vans = metrics.global_count.expect("search converges");
    let all_vehicles = runner.simulator().civilian_population();

    println!("== white-van hunt over synthetic midtown ==");
    println!(
        "map: {} intersections (closed border for the search perimeter)",
        runner.net().node_count()
    );
    println!("civilian vehicles inside:       {all_vehicles}");
    println!("white vans counted by protocol: {vans}");
    println!(
        "white vans ground truth:        {}",
        metrics.true_population
    );
    println!(
        "search complete at the sinks after {:.1} min",
        metrics.collection_done_s.unwrap() / 60.0
    );
    assert!(metrics.exact());
    println!("\nevery white van in the perimeter is accounted for exactly once —");
    println!("police can stop pulling over every van in the tri-state area.");
}
