//! Quickstart: count every vehicle in a small closed road system, exactly
//! once, under the paper's 30% lossy wireless channel.
//!
//! Run with: `cargo run --release --example quickstart`

use vcount::prelude::*;

fn main() {
    // 1. Describe the deployment: a 4x4 downtown grid, two lanes per
    //    direction (overtakes possible), one randomly placed seed
    //    checkpoint, 30% of label handoffs failing.
    let scenario = Scenario {
        map: MapSpec::Grid {
            cols: 4,
            rows: 4,
            spacing_m: 200.0,
            lanes: 2,
            speed_mps: vcount::roadnet::mph_to_mps(15.0),
        },
        closed: true,
        sim: SimConfig {
            seed: 2014,
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(), // Alg. 3 + Alg. 4
        channel: ChannelKind::PAPER,           // 30% failure chance
        seeds: SeedSpec::Random { count: 1 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 2.0 * 3600.0,
    };

    // 2. Run until the seed has collected the global view.
    let mut runner = Runner::builder(&scenario).build();
    let metrics = runner.run(Goal::Collection, scenario.max_time_s);

    // 3. Inspect the result.
    println!("== infrastructure-less vehicle counting: quickstart ==");
    println!(
        "network: {} intersections, {} directed segments",
        runner.net().node_count(),
        runner.net().edge_count()
    );
    println!("seed checkpoint: {}", runner.seeds()[0]);
    println!(
        "constitution (every checkpoint stable): {:.1} min",
        metrics.constitution_done_s.expect("converges") / 60.0
    );
    println!(
        "collection (global view at the seed):   {:.1} min",
        metrics.collection_done_s.expect("converges") / 60.0
    );
    println!(
        "label handoff failures compensated: {}",
        metrics.handoff_failures
    );
    println!(
        "overtake adjustments applied:       {:+}",
        metrics.overtake_adjustments
    );
    println!();
    println!(
        "protocol count: {}   ground truth: {}",
        metrics.global_count.unwrap(),
        metrics.true_population
    );
    println!(
        "naive per-checkpoint baseline:  {} (double-counts wildly)",
        metrics.baseline_naive
    );
    println!(
        "image-recognition dedup:        {} (collapses look-alikes)",
        metrics.baseline_dedup
    );
    println!(
        "per-vehicle oracle violations:  {}",
        metrics.oracle_violations
    );
    assert!(
        metrics.exact(),
        "the paper's claim: no mis- or double-counting"
    );
    println!("\nresult is exact: no mis-counting, no double-counting.");
}
