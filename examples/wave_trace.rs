//! Watch the counting wave spread across midtown: an ASCII rendering of
//! checkpoint states over time, plus a progress trace.
//!
//! Legend: `.` inactive, `o` active (counting), `#` stable, `S` seed.
//!
//! Run with: `cargo run --release --example wave_trace`

use vcount::prelude::*;
use vcount::roadnet::builders::ManhattanConfig;

fn render(runner: &Runner, cfg: &ManhattanConfig) -> String {
    let mut out = String::new();
    // Streets top-to-bottom (north on top).
    for s in (0..cfg.streets).rev() {
        for a in 0..cfg.avenues {
            let node = cfg.node_at(a, s);
            let cp = runner.checkpoint(node);
            let ch = if runner.seeds().contains(&node) {
                'S'
            } else if cp.is_stable() {
                '#'
            } else if cp.is_active() {
                'o'
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = ManhattanConfig {
        avenues: 10,
        streets: 16,
        ..ManhattanConfig::small()
    };
    let scenario = Scenario::paper_closed(cfg.clone(), 60.0, 1, 77);
    let mut runner = Runner::builder(&scenario).build();

    println!("== the counting wave over midtown (seed 'S', '.'→'o'→'#') ==\n");
    let mut next_frame = 0.0;
    let mut frames = 0;
    while !(runner.all_stable() && runner.all_collected()) {
        runner.step();
        if runner.time_s() >= next_frame && frames < 8 {
            let p = runner.progress();
            println!(
                "t = {:>5.1} min   active {:>3}/{}   stable {:>3}/{}   count {} (truth {})",
                p.time_s / 60.0,
                p.active,
                p.checkpoints,
                p.stable,
                p.checkpoints,
                p.distributed_count,
                p.population
            );
            println!("{}", render(&runner, &cfg));
            frames += 1;
            next_frame = runner.time_s() + 240.0; // every 4 simulated minutes
        }
        if runner.time_s() > scenario.max_time_s {
            break;
        }
    }
    let p = runner.progress();
    println!(
        "converged at t = {:.1} min: count {} == truth {}, violations {}",
        p.time_s / 60.0,
        p.distributed_count,
        p.population,
        runner.verify().len()
    );
    println!("{}", render(&runner, &cfg));
    assert_eq!(p.distributed_count, p.population as i64);
}
