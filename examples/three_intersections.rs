//! The paper's Fig. 1 walkthrough: the closed road system with three
//! intersections, where checkpoint "1" (our node 0) is the seed and sink.
//!
//! This example drives the checkpoint state machines directly (no traffic
//! simulator) through the unified [`Checkpoint::handle`] entry point and
//! prints the exact phase transitions of Alg. 1 and the collection of
//! Alg. 2, mirroring panels (a)–(d) of the figure. The emitted
//! [`ProtocolEvent`] stream of this walkthrough is pinned by the
//! `golden_trace` integration test.
//!
//! Run with: `cargo run --example three_intersections`

use vcount::core::{
    Checkpoint, CheckpointConfig, Command, Observation, ProtocolEvent, ProtocolVariant,
};
use vcount::roadnet::builders::fig1_triangle;
use vcount::roadnet::{EdgeId, NodeId};
use vcount::v2x::{BodyType, Brand, Color, Label, VehicleClass, VehicleId};

const CAR: VehicleClass = VehicleClass {
    color: Color::Silver,
    brand: Brand::Borealis,
    body: BodyType::Sedan,
};

fn handle(cp: &mut Checkpoint, obs: Observation, t: f64) -> Vec<Command> {
    let mut cmds = Vec::new();
    cp.handle(obs, t, &mut cmds);
    cmds
}

fn enter(cp: &mut Checkpoint, t: f64, vehicle: u64, via: EdgeId, label: Option<Label>) {
    handle(
        cp,
        Observation::Entered {
            vehicle: VehicleId(vehicle),
            via: Some(via),
            class: CAR,
            label,
        },
        t,
    );
}

fn deliver(cp: &mut Checkpoint, t: f64, vehicle: u64, onto: EdgeId) -> Label {
    let label = cp.offer_label(onto).expect("label pending");
    handle(
        cp,
        Observation::Departed {
            vehicle: VehicleId(vehicle),
            onto,
            delivered: true,
            matches_filter: true,
        },
        t,
    );
    label
}

fn main() {
    let net = fig1_triangle(250.0, 1, 6.7);
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    let mut cps: Vec<Checkpoint> = net
        .node_ids()
        .map(|n| Checkpoint::new(&net, n, cfg))
        .collect();
    let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();

    println!("== Fig. 1: counting in a 3-intersection closed system ==\n");

    // (a) Initialization from the seed.
    println!("(a) seed checkpoint n0 initializes: p(0)=∅, s(0)={{n1, n2}}");
    let mut seed_cmds = Vec::new();
    cps[0].activate_as_seed(0.0, &mut seed_cmds);
    println!("    n0 counts inbound 0←1 and 0←2; labels pending on 0→1, 0→2\n");

    // Uncounted traffic flows into the seed and is counted (phase 5).
    for (vehicle, via, t) in [(1, e(1, 0), 1.0), (2, e(2, 0), 1.5), (3, e(1, 0), 2.0)] {
        enter(&mut cps[0], t, vehicle, via, None);
    }
    println!(
        "    three vehicles entered n0 and were counted: c(0) = {}",
        cps[0].local_count()
    );

    // (b) Propagation: the first vehicle joining 0→1 carries the label
    // (vehicle 1, turning around at the seed).
    let l01 = deliver(&mut cps[0], 29.0, 1, e(0, 1));
    enter(&mut cps[1], 30.0, 1, e(0, 1), Some(l01));
    println!("\n(b) label 0→1 activates n1: p(1)={{n0}}, s(1)={{n2}}");
    println!("    n1 counts only inbound 1←2 (traffic from p(1) is already counted)");

    // n1 counts a car from n2, then the wave reaches n2.
    enter(&mut cps[1], 35.0, 4, e(2, 1), None);
    let l12 = deliver(&mut cps[1], 59.0, 4, e(1, 2));
    enter(&mut cps[2], 60.0, 4, e(1, 2), Some(l12));
    println!("    label 1→2 activates n2: p(2)={{n1}}, s(2)={{n0}}");

    // (c) Backwash: labels flow back and stop each inbound counting.
    let l10 = deliver(&mut cps[1], 69.0, 1, e(1, 0));
    enter(&mut cps[0], 70.0, 1, e(1, 0), Some(l10));
    println!("\n(c) backwash label 1→0 arrives: n0 stops counting 0←1");

    let l20 = deliver(&mut cps[2], 74.0, 4, e(2, 0));
    enter(&mut cps[0], 75.0, 4, e(2, 0), Some(l20));
    let l21 = deliver(&mut cps[2], 79.0, 2, e(2, 1));
    enter(&mut cps[1], 80.0, 2, e(2, 1), Some(l21));
    let l02 = deliver(&mut cps[0], 84.0, 3, e(0, 2));
    let cmds2 = handle(
        &mut cps[2],
        Observation::Entered {
            vehicle: VehicleId(3),
            via: Some(e(0, 2)),
            class: CAR,
            label: Some(l02),
        },
        85.0,
    );
    println!("    all inbound directions stopped; every checkpoint is stable:");
    for cp in &cps {
        println!(
            "      {}: stable={} c(u)={}",
            cp.id(),
            cp.is_stable(),
            cp.local_count()
        );
    }

    // (d) Collection along the spanning tree 2 → 1 → 0 (Alg. 2).
    println!("\n(d) collection along the p-s spanning tree (Alg. 2):");
    let Command::SendReport { to, total, seq } = cmds2[0] else {
        panic!("n2 must report to its predecessor");
    };
    println!("    n2 reports c(2)={total} to p(2)={to}");
    let cmds1 = handle(
        &mut cps[1],
        Observation::Report {
            from: NodeId(2),
            total,
            seq,
        },
        100.0,
    );
    let Command::SendReport { to, total, seq } = cmds1[0] else {
        panic!("n1 must report to its predecessor");
    };
    println!("    n1 reports c(1)+c(2)={total} to p(1)={to}");
    handle(
        &mut cps[0],
        Observation::Report {
            from: NodeId(1),
            total,
            seq,
        },
        120.0,
    );
    let global = cps[0].tree_total().unwrap();
    println!("\nglobal view at the seed: {global} vehicles");
    assert_eq!(global, 4, "3 counted at n0 + 1 counted at n1");
    println!("(3 counted at the seed + 1 counted at n1 — no vehicle missed or duplicated)");

    // The observability layer saw every transition; summarize it.
    let mut events: Vec<(f64, ProtocolEvent)> = Vec::new();
    for cp in &mut cps {
        cp.drain_events_into(&mut events);
    }
    println!(
        "\nprotocol events emitted across the walkthrough: {} \
         (pinned by the golden_trace test)",
        events.len()
    );
}
