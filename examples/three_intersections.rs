//! The paper's Fig. 1 walkthrough: the closed road system with three
//! intersections, where checkpoint "1" (our node 0) is the seed and sink.
//!
//! This example drives the checkpoint state machines directly (no traffic
//! simulator) and prints the exact phase transitions of Alg. 1 and the
//! collection of Alg. 2, mirroring panels (a)–(d) of the figure.
//!
//! Run with: `cargo run --example three_intersections`

use vcount::core::{Checkpoint, CheckpointConfig, Command, ProtocolVariant};
use vcount::roadnet::builders::fig1_triangle;
use vcount::roadnet::NodeId;
use vcount::v2x::{BodyType, Brand, Color, VehicleClass};

const CAR: VehicleClass = VehicleClass {
    color: Color::Silver,
    brand: Brand::Borealis,
    body: BodyType::Sedan,
};

fn main() {
    let net = fig1_triangle(250.0, 1, 6.7);
    let cfg = CheckpointConfig::for_variant(ProtocolVariant::Simple);
    let mut cps: Vec<Checkpoint> = net
        .node_ids()
        .map(|n| Checkpoint::new(&net, n, cfg))
        .collect();
    let e = |a: u32, b: u32| net.edge_between(NodeId(a), NodeId(b)).unwrap();

    println!("== Fig. 1: counting in a 3-intersection closed system ==\n");

    // (a) Initialization from the seed.
    println!("(a) seed checkpoint n0 initializes: p(0)=∅, s(0)={{n1, n2}}");
    cps[0].activate_as_seed(0.0);
    println!("    n0 counts inbound 0←1 and 0←2; labels pending on 0→1, 0→2\n");

    // Uncounted traffic flows into the seed and is counted (phase 5).
    for (via, t) in [(e(1, 0), 1.0), (e(2, 0), 1.5), (e(1, 0), 2.0)] {
        let out = cps[0].on_vehicle_entered(t, Some(via), &CAR, None);
        assert!(out.counted);
    }
    println!(
        "    three vehicles entered n0 and were counted: c(0) = {}",
        cps[0].local_count()
    );

    // (b) Propagation: the first vehicle joining 0→1 carries the label.
    let l01 = cps[0].offer_label(e(0, 1)).unwrap();
    cps[0].label_delivered(e(0, 1));
    let out = cps[1].on_vehicle_entered(30.0, Some(e(0, 1)), &CAR, Some(l01));
    assert!(out.activated);
    println!("\n(b) label 0→1 activates n1: p(1)={{n0}}, s(1)={{n2}}");
    println!("    n1 counts only inbound 1←2 (traffic from p(1) is already counted)");

    // n1 counts a car from n2, then the wave reaches n2.
    cps[1].on_vehicle_entered(35.0, Some(e(2, 1)), &CAR, None);
    let l12 = cps[1].offer_label(e(1, 2)).unwrap();
    cps[1].label_delivered(e(1, 2));
    cps[2].on_vehicle_entered(60.0, Some(e(1, 2)), &CAR, Some(l12));
    println!("    label 1→2 activates n2: p(2)={{n1}}, s(2)={{n0}}");

    // (c) Backwash: labels flow back and stop each inbound counting.
    let l10 = cps[1].offer_label(e(1, 0)).unwrap();
    cps[1].label_delivered(e(1, 0));
    let out = cps[0].on_vehicle_entered(70.0, Some(e(1, 0)), &CAR, Some(l10));
    println!(
        "\n(c) backwash label 1→0 arrives: n0 stops counting 0←1 (stopped={:?})",
        out.stopped
    );

    let l20 = cps[2].offer_label(e(2, 0)).unwrap();
    cps[2].label_delivered(e(2, 0));
    cps[0].on_vehicle_entered(75.0, Some(e(2, 0)), &CAR, Some(l20));
    let l21 = cps[2].offer_label(e(2, 1)).unwrap();
    cps[2].label_delivered(e(2, 1));
    cps[1].on_vehicle_entered(80.0, Some(e(2, 1)), &CAR, Some(l21));
    let l02 = cps[0].offer_label(e(0, 2)).unwrap();
    cps[0].label_delivered(e(0, 2));
    let cmds2 = cps[2]
        .on_vehicle_entered(85.0, Some(e(0, 2)), &CAR, Some(l02))
        .commands;
    println!("    all inbound directions stopped; every checkpoint is stable:");
    for cp in &cps {
        println!(
            "      {}: stable={} c(u)={}",
            cp.id(),
            cp.is_stable(),
            cp.local_count()
        );
    }

    // (d) Collection along the spanning tree 2 → 1 → 0 (Alg. 2).
    println!("\n(d) collection along the p-s spanning tree (Alg. 2):");
    let Command::SendReport { to, total, seq } = cmds2[0] else {
        panic!("n2 must report to its predecessor");
    };
    println!("    n2 reports c(2)={total} to p(2)={to}");
    let cmds1 = cps[1].on_report(100.0, NodeId(2), total, seq);
    let Command::SendReport { to, total, seq } = cmds1[0] else {
        panic!("n1 must report to its predecessor");
    };
    println!("    n1 reports c(1)+c(2)={total} to p(1)={to}");
    cps[0].on_report(120.0, NodeId(1), total, seq);
    let global = cps[0].tree_total().unwrap();
    println!("\nglobal view at the seed: {global} vehicles");
    assert_eq!(global, 4, "3 counted at n0 + 1 counted at n1");
    println!("(3 counted at the seed + 1 counted at n1 — no vehicle missed or duplicated)");
}
