//! Open road system (Alg. 5): midtown with live in/out traffic along the
//! border. The protocol reaches the paper's "complete status" — interior
//! counting stabilizes while border interaction counters keep tracking the
//! live population — and the count keeps matching ground truth afterwards.
//!
//! Run with: `cargo run --release --example open_city`

use vcount::core::ProtocolVariant;
use vcount::prelude::*;
use vcount::roadnet::builders::ManhattanConfig;

fn main() {
    let scenario = Scenario {
        map: MapSpec::Manhattan(ManhattanConfig::small()),
        closed: false, // border stays open: vehicles enter and leave freely
        sim: SimConfig {
            seed: 5,
            spawn_rate_hz: 0.08,
            ..Default::default()
        },
        demand: Demand::at_volume(50.0),
        protocol: CheckpointConfig::for_variant(ProtocolVariant::Open),
        channel: ChannelKind::PAPER,
        seeds: SeedSpec::Random { count: 3 },
        transport: TransportMode::default(),
        patrol: PatrolSpec::default(),
        max_time_s: 3.0 * 3600.0,
    };

    let mut runner = Runner::builder(&scenario).build();
    let metrics = runner.run(Goal::Constitution, scenario.max_time_s);
    let complete_at = metrics
        .constitution_done_s
        .expect("reaches complete status");

    println!("== open-system counting over synthetic midtown ==");
    println!(
        "border checkpoints with live interaction: {}",
        runner.net().border_nodes().len()
    );
    println!("complete status reached at {:.1} min", complete_at / 60.0);
    println!(
        "population at complete status: protocol={} truth={}",
        runner.distributed_count(),
        runner.true_population()
    );
    assert_eq!(metrics.oracle_violations, 0);

    // The "complete status" is live: keep simulating another 20 minutes of
    // churn (arrivals, departures) and watch the distributed count track
    // the true population continuously.
    println!("\ntracking the live population for 20 more minutes of churn:");
    let until = runner.time_s() + 20.0 * 60.0;
    let mut checks = 0u32;
    while runner.time_s() < until {
        runner.step();
        if (runner.time_s() as u64).is_multiple_of(300) {
            // no-op marker; sampled prints below
        }
        checks += 1;
        if checks.is_multiple_of(600) {
            let p = runner.distributed_count();
            let t = runner.true_population() as i64;
            println!(
                "  t={:>5.1} min  protocol={p:>4}  truth={t:>4}  drift={:+}",
                runner.time_s() / 60.0,
                p - t
            );
            assert_eq!(p, t, "live population must track exactly");
        }
    }
    let violations = runner.verify();
    assert!(violations.is_empty());
    println!("\nlive tracking stayed exact through {checks} steps of churn.");
}
