//! The odd-traffic-pattern deadlock (Section IV-B) and its patrol-car cure
//! (Theorems 3 & 4).
//!
//! With no traffic willing to enter a road segment, the label for that
//! direction never finds a carrier: the downstream checkpoint keeps
//! counting forever ("orphan" segment), and the starvation propagates up
//! the spanning tree as a waiting chain. Police patrol cars driving an
//! edge-covering cycle (Theorem 4 guarantees one exists) act as reliable,
//! never-counted label carriers and break the deadlock (Theorem 3).
//!
//! Run with: `cargo run --release --example patrol_deadlock`

use vcount::prelude::*;

/// A random city (seed 8) that contains a *structural* orphan: an
/// intersection whose only inbound segment is the twin of one of its
/// outbound segments. With strict no-U-turn driving, no vehicle ever joins
/// that outbound direction, so its label never finds a carrier.
fn scenario(patrol_cars: usize) -> Scenario {
    Scenario {
        map: MapSpec::Random(RandomCityConfig {
            nodes: 25,
            one_way_fraction: 0.5,
            seed: 8,
            ..Default::default()
        }),
        closed: true,
        sim: SimConfig {
            seed: 8,
            u_turn_prob: 0.0, // strict detours: the deadlock is structural
            ..Default::default()
        },
        demand: Demand::at_volume(60.0),
        protocol: CheckpointConfig::default(),
        channel: ChannelKind::Perfect,
        seeds: SeedSpec::Explicit(vec![0]),
        transport: TransportMode::VehicleWithPatrolFallback,
        patrol: PatrolSpec { cars: patrol_cars },
        max_time_s: 6.0 * 3600.0, // collection hops ride patrol laps: allow several
    }
}

fn main() {
    println!("== orphan-segment deadlock and the patrol cure ==\n");

    // Without patrol: the counting starves.
    let s = scenario(0);
    let mut runner = Runner::builder(&s).build();
    let m = runner.run(Goal::Constitution, s.max_time_s);
    let stable = runner
        .net()
        .node_ids()
        .filter(|n| runner.checkpoint(*n).is_stable())
        .count();
    println!(
        "without patrol: after {:.0} min, {stable}/{} checkpoints stable — {}",
        m.elapsed_s / 60.0,
        runner.net().node_count(),
        if m.constitution_done_s.is_none() {
            "DEADLOCKED (orphan directions wait forever)"
        } else {
            "converged (lucky traffic)"
        }
    );
    assert!(m.constitution_done_s.is_none());

    // With two patrol cars on an edge-covering cycle: guaranteed progress.
    let s = scenario(2);
    let mut runner = Runner::builder(&s).build();
    let m = runner.run(Goal::Collection, s.max_time_s);
    println!(
        "with 2 patrol cars: constitution at {:.1} min, collection at {:.1} min",
        m.constitution_done_s
            .expect("Theorem 3 guarantees convergence")
            / 60.0,
        m.collection_done_s.expect("patrol also relays reports") / 60.0
    );
    println!(
        "count={} truth={} violations={}",
        m.global_count.unwrap(),
        m.true_population,
        m.oracle_violations
    );
    assert!(m.exact());
    println!("\npatrol cars delivered every pending label and report: exact count.");
}
