//! Offline stub of `crossbeam`: scoped threads over `std::thread::scope`.
//!
//! Covers the `crossbeam::scope(|s| { s.spawn(|_| ...); })` pattern this
//! workspace uses. Spawn closures receive a placeholder `&Scope` they may
//! ignore (nested spawning through it is supported).

use std::any::Any;

/// Scope handle passed to [`scope`] and to each spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            handle: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    handle: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.handle.join()
    }
}

/// Runs `f` with a scope in which borrowing spawns are allowed; joins all
/// spawned threads before returning. Returns `Err` if any spawned thread (or
/// `f` itself) panicked, like real crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_share_borrows_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
