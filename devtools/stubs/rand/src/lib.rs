//! Offline stub of `rand` 0.8 — deterministic splitmix64 streams.
//!
//! API-compatible with the subset this workspace uses. Numbers differ from
//! real `rand` (`StdRng` there is ChaCha12), but every stream is still a
//! pure function of its seed.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the spans this workspace uses
                // and irrelevant for a test stub.
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`], blanket-implemented like real
/// `rand` so it also works through `&mut dyn RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Alias so `SmallRng` users (if any appear) keep compiling.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = rng.gen_range(0u32..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let p: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&p));
    }
}
