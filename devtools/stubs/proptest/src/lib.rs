//! Offline stub of `proptest`: random sampling without shrinking.
//!
//! Each `proptest!` test runs `cases` deterministic random samples of its
//! strategies (seeded per case index, so failures reproduce). On failure the
//! case number and message are reported; no shrinking is attempted.

/// Deterministic splitmix64 source used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy (used by `prop_oneof!`).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Uniform choice between boxed strategies.
    pub struct Union<T> {
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty strategy range");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// `Some` three times out of four, like real proptest's default weight.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod bool_mod {
    /// `prop::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl super::strategy::Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

/// The `prop::` path namespace (`prop::bool::ANY`, `prop::collection`, ...).
pub mod prop {
    pub use super::bool_mod as bool;
    pub use super::collection;
    pub use super::option;
}

pub mod test_runner {
    /// Run configuration; only `cases` matters for the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?}, {}:{})",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Discard the case (counts as passed in this stub).
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(
                    0xA076_1D64_78BD_642Fu64 ^ case.wrapping_mul(0x1000_0000_01B3),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop, Arbitrary, ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(n in arb_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_tuples(v in prop_oneof![(0u32..5).prop_map(|x| x as u64), any::<u64>()],
                            pair in (any::<bool>(), 1i64..9)) {
            let _ = v;
            prop_assert!(pair.1 >= 1 && pair.1 < 9);
        }

        #[test]
        fn collections_and_options(xs in prop::collection::vec(any::<u8>(), 0..10),
                                   o in prop::option::of(any::<u32>())) {
            prop_assert!(xs.len() < 10);
            let _ = o;
        }
    }
}
