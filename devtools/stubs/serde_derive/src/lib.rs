//! Offline stub of `serde_derive`: token-level parsing of structs/enums, code
//! generation by string formatting. Supports exactly the shapes this
//! workspace uses — non-generic named/tuple/unit structs and enums with
//! unit/tuple/named variants, plus `#[serde(default)]` on struct fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model --

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --------------------------------------------------------------- parsing --

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde stub derive: expected struct/enum, got `{other}`"),
    };
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is unsupported");
    }
    let shape = if is_enum {
        let body = expect_group(&tokens, &mut i, Delimiter::Brace);
        Shape::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stub derive: unexpected token after struct name: {other:?}"),
        }
    };
    Item { name, shape }
}

/// Skips `#[...]` attribute groups; returns true if any skipped attribute was
/// `#[serde(...)]` containing the ident `default`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                has_default |= attr_is_serde_default(g.stream());
                *i += 2;
                continue;
            }
        }
        break;
    }
    has_default
}

fn attr_is_serde_default(attr: TokenStream) -> bool {
    let parts: Vec<TokenTree> = attr.into_iter().collect();
    match (parts.first(), parts.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "default")),
        _ => false,
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected ident, got {other:?}"),
    }
}

fn expect_group(tokens: &[TokenTree], i: &mut usize, delim: Delimiter) -> TokenStream {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.stream()
        }
        other => panic!("serde stub derive: expected {delim:?} group, got {other:?}"),
    }
}

/// Consumes type tokens until a comma at angle-bracket depth 0 (the comma is
/// consumed too) or the end of the stream.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        // Each entry: attrs, vis, then a type.
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- generation --

fn ser_expr(expr: &str) -> String {
    format!("::serde::Serialize::serialize_value({expr})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), {e})",
                        n = f.name,
                        e = ser_expr(&format!("&self.{}", f.name))
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => ser_expr("&self.0"),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> =
                (0..*n).map(|k| ser_expr(&format!("&self.{k}"))).collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {e})]),",
                            e = ser_expr("f0")
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let entries: Vec<String> =
                                (0..*n).map(|k| ser_expr(&format!("f{k}"))).collect();
                            format!(
                                "{name}::{vn}({b}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{e}]))]),",
                                b = binds.join(", "),
                                e = entries.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), {e})",
                                        n = f.name,
                                        e = ser_expr(&f.name)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {b} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{e}]))]),",
                                b = binds.join(", "),
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn de_named_fields(ty: &str, fields: &[Field], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let miss = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(format!(\"missing field `{}` for {}\"))",
                    f.name, ty
                )
            };
            format!(
                "{n}: match ::serde::__find({m}, \"{n}\") {{\n\
                     ::std::option::Option::Some(x) => ::serde::Deserialize::deserialize_value(x)?,\n\
                     ::std::option::Option::None => {miss},\n\
                 }}",
                n = f.name,
                m = map_expr
            )
        })
        .collect();
    inits.join(",\n")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits = de_named_fields(name, fields, "m");
            format!(
                "let m = match v {{\n\
                     ::serde::Value::Map(m) => m,\n\
                     other => return ::std::result::Result::Err(format!(\"expected map for {name}, got {{other:?}}\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&s[{k}])?"))
                .collect();
            format!(
                "let s = match v {{\n\
                     ::serde::Value::Seq(s) if s.len() == {n} => s,\n\
                     other => return ::std::result::Result::Err(format!(\"expected {n}-seq for {name}, got {{other:?}}\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({inits}))",
                inits = inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = v; ::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::deserialize_value(&s[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let s = match inner {{\n\
                                         ::serde::Value::Seq(s) if s.len() == {n} => s,\n\
                                         other => return ::std::result::Result::Err(format!(\"expected {n}-seq for {name}::{vn}, got {{other:?}}\")),\n\
                                     }};\n\
                                     ::std::result::Result::Ok({name}::{vn}({inits}))\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits = de_named_fields(&format!("{name}::{vn}"), fields, "mm");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let mm = match inner {{\n\
                                         ::serde::Value::Map(mm) => mm,\n\
                                         other => return ::std::result::Result::Err(format!(\"expected map for {name}::{vn}, got {{other:?}}\")),\n\
                                     }};\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => ::std::result::Result::Err(format!(\"unknown unit variant {{other}} for {name}\")),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => ::std::result::Result::Err(format!(\"unknown variant {{other}} for {name}\")),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(format!(\"expected variant for {name}, got {{other:?}}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
