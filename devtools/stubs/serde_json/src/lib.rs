//! Offline stub of `serde_json`: renders and parses the stub `serde`
//! [`Value`] tree as real JSON text, so serialize→deserialize round-trips
//! behave like the real crate for the shapes this workspace uses.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type covering both syntax and data-shape failures.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize_value(&v).map_err(Error)
}

pub fn from_slice<T: Deserialize>(s: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(s).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------- writer --

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form (always
                // keeps a decimal point or exponent, like serde_json).
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at offset {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at offset {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos - 1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error("truncated utf-8".to_string()))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    s.push_str(text);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let v: f64 = from_str("0.30000000000000004").unwrap();
        assert_eq!(v, 0.30000000000000004);
        let s = to_string(&v).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, v);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }

    #[test]
    fn value_tree_round_trips() {
        let json = r#"{"a": [1, 2.5, "x\ny"], "b": null, "c": {"d": true}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["c"]["d"], true);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"k": [1, {"n": 2}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo → wörld \"q\"".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
