//! Offline stub of `bytes` 1.x — `Vec<u8>`-backed buffers.
//!
//! Covers the codec subset this workspace uses: big-endian reads/writes via
//! [`Buf`]/[`BufMut`], plus [`Bytes`]/[`BytesMut`] construction, freezing and
//! slicing. No reference counting or zero-copy tricks — everything clones.

use std::ops::RangeBounds;

/// Read side of a byte buffer (big-endian, like real `bytes`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
}

/// Write side of a byte buffer (big-endian, like real `bytes`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-slice of the *remaining* bytes, as a fresh buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Empties the buffer, keeping its allocation (like real `bytes`).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Copies the current contents out as an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

// Real `bytes` 1.x implements `BufMut` for `Vec<u8>` too; arena-style
// writers append straight into a reusable vector.
impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_i64(-42);
        w.put_u64(u64::MAX);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_u64(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(s.as_ref(), &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1]);
        b.get_u32();
    }

    #[test]
    fn slice_reads_without_copying() {
        let backing = [7u8, 0xDE, 0xAD, 0xBE, 0xEF, 9];
        let mut r: &[u8] = &backing;
        assert_eq!(r.remaining(), 6);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(Buf::chunk(&r), &[9]);
        Buf::advance(&mut r, 1);
        assert!(!r.has_remaining());
    }
}
