//! Offline stub of `criterion`: a timing-only bench harness. Each benchmark
//! runs a short warm-up plus a fixed measurement loop and prints mean time
//! per iteration. No statistics, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    /// (iterations, total elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50 ms or 5 iterations, whichever is later.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 5 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Measure: aim for ~200 ms of work based on warm-up rate.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (0.2 / per_iter.max(1e-9)).clamp(1.0, 1_000_000.0) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.result = Some((target, start.elapsed()));
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) => {
            let per = elapsed.as_secs_f64() / iters as f64;
            println!("{id:<60} {:>12.3} µs/iter ({iters} iters)", per * 1e6);
        }
        None => println!("{id:<60} (no measurement)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
