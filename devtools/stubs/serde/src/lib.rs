//! Offline stub of `serde`: a tree [`Value`] data model with
//! [`Serialize`]/[`Deserialize`] traits over it, plus derive macros
//! re-exported from the stub `serde_derive`. The companion `serde_json` stub
//! renders/parses `Value` as real JSON, so round-trips genuinely work.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model everything serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered string-keyed map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => __find(m, key),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::I64(n) => i128::from(*n) == *other as i128,
                    Value::U64(n) => i128::from(*n) == *other as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, String>;
}

/// Map-field lookup used by derive-generated code.
pub fn __find<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ----------------------------------------------------------- primitives --

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                let n = v.as_i64().ok_or_else(|| format!("expected integer, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                let n = v.as_u64().ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize_value).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize + Copy> Serialize for std::cell::Cell<T> {
    fn serialize_value(&self) -> Value {
        self.get().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::cell::Cell<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        T::deserialize_value(v).map(std::cell::Cell::new)
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Seq(s) if s.len() == [$($idx),+].len() => {
                        Ok(($($name::deserialize_value(&s[$idx])?,)+))
                    }
                    other => Err(format!("expected tuple sequence, got {other:?}")),
                }
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        // JSON objects need string keys; render non-string keys via their
        // Value form's display-ish debug. Good enough for the stub.
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        let Value::Map(entries) = v else {
            return Err(format!("expected map, got {v:?}"));
        };
        let mut out = std::collections::BTreeMap::new();
        for (k, val) in entries {
            // Keys were stringified on the way out; try the string form
            // first, then the numeric re-interpretations (integer-keyed
            // maps serialize their keys as JSON strings).
            let mut key = K::deserialize_value(&Value::Str(k.clone()));
            if key.is_err() {
                if let Ok(n) = k.parse::<u64>() {
                    key = key.or_else(|_| K::deserialize_value(&Value::U64(n)));
                }
                if let Ok(n) = k.parse::<i64>() {
                    key = key.or_else(|_| K::deserialize_value(&Value::I64(n)));
                }
                if let Ok(n) = k.parse::<f64>() {
                    key = key.or_else(|_| K::deserialize_value(&Value::F64(n)));
                }
            }
            out.insert(key?, V::deserialize_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_vec_round_trip() {
        let x: Vec<Option<u32>> = vec![Some(3), None, Some(7)];
        let v = x.serialize_value();
        let back: Vec<Option<u32>> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::I64(3)),
            ("b".to_string(), Value::Str("x".to_string())),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"], "x");
        assert_eq!(v["missing"], Value::Null);
    }
}
