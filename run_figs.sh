#!/bin/sh
cd /root/repo
export VCOUNT_GRID=full VCOUNT_REPS=2
./target/release/fig3 > results/fig3.csv 2> results/fig3.log
./target/release/fig4 > results/fig4.csv 2> results/fig4.log
./target/release/fig5 > results/fig5.csv 2> results/fig5.log
./target/release/ablations > results/ablations.txt 2>&1
./target/release/obs6 > results/obs6.txt 2>&1
touch results/.done
