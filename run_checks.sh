#!/usr/bin/env bash
# CI-equivalent checks: build, tests, clippy, fmt.
#
# The committed .cargo/config.toml patches every external dependency to the
# offline stubs under devtools/stubs/ (this container cannot reach the
# crates.io registry). On a networked machine, delete that file to build and
# test against the real crates — the commands below work either way.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "+ $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --all --check
echo "All checks passed."
