#!/usr/bin/env bash
# CI-equivalent checks: build, tests, clippy, fmt.
#
# The committed .cargo/config.toml patches every external dependency to the
# offline stubs under devtools/stubs/ (this container cannot reach the
# crates.io registry). On a networked machine, delete that file to build and
# test against the real crates — the commands below work either way.
set -euo pipefail
cd "$(dirname "$0")"

# One temp root for every scratch file below, cleaned up on ANY exit path.
# The trap is installed before the first mktemp so an early failure (e.g.
# in the doc check) can never leak temp files; the fallback guards the
# window before tmp_root is assigned.
trap 'rm -rf "${tmp_root:-/nonexistent-vcount-tmp}"' EXIT
tmp_root="$(mktemp -d /tmp/vcount_checks.XXXXXX)"

run() {
    echo "+ $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --all --check

# Docs must build clean: every public item is documented, every intra-doc
# link resolves, and cargo itself emits no warnings (e.g. doc-path
# collisions, which -D warnings alone would not catch).
echo "+ cargo doc --workspace --no-deps (zero warnings required)"
doc_log="$tmp_root/doc_log"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps 2>"$doc_log" || {
    cat "$doc_log"
    echo "cargo doc failed (warnings are errors)" >&2
    exit 1
}
if grep -q "^warning" "$doc_log"; then
    cat "$doc_log"
    echo "cargo doc emitted warnings" >&2
    exit 1
fi

# Snapshot → resume smoke: on a tiny grid, a run interrupted by a snapshot
# and resumed must emit the byte-identical tail of the uninterrupted run's
# event trace (the per-variant digest test lives in crates/sim/tests/).
snap_dir="$tmp_root/snap"
mkdir "$snap_dir"
run cargo run --release -q -p vcount-cli --bin vcount -- \
    scenario --preset closed --volume 40 --seeds 2 --rng 9 --out "$snap_dir/scen.json"
run cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution \
    --snapshot-every 50 --snapshot-out "$snap_dir/snap.json" \
    --trace "$snap_dir/full.jsonl" >/dev/null
run cargo run --release -q -p vcount-cli --bin vcount -- \
    run --resume "$snap_dir/snap.json" --goal constitution \
    --trace "$snap_dir/tail.jsonl" >/dev/null
run python3 - "$snap_dir" <<'EOF'
import sys
d = sys.argv[1]
full = open(f"{d}/full.jsonl", "rb").read()
tail = open(f"{d}/tail.jsonl", "rb").read()
assert tail and full.endswith(tail), \
    "resumed trace is not a byte-identical suffix of the uninterrupted trace"
print(f"snapshot/resume smoke ok: {len(tail)} byte tail of {len(full)} byte trace")
EOF

# Sharding smoke: the shard count is a throughput knob, never a semantics
# knob (DESIGN.md §8bis) — a 2-shard run of the same scenario must emit a
# byte-identical event trace and the same final count as the 1-shard run.
shard_dir="$tmp_root/shards"
mkdir "$shard_dir"
echo "+ vcount run scen.json --shards 1|2 --trace ... (byte-diff)"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution --shards 1 \
    --trace "$shard_dir/s1.jsonl" > "$shard_dir/m1.json"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution --shards 2 \
    --trace "$shard_dir/s2.jsonl" > "$shard_dir/m2.json"
run cmp "$shard_dir/s1.jsonl" "$shard_dir/s2.jsonl"
run python3 - "$shard_dir" <<'EOF'
import json, sys
d = sys.argv[1]
m1 = json.load(open(f"{d}/m1.json"))
m2 = json.load(open(f"{d}/m2.json"))
assert m1["global_count"] == m2["global_count"], (m1["global_count"], m2["global_count"])
assert m1["oracle_violations"] == m2["oracle_violations"] == 0
print(f"sharding smoke ok: 1-shard and 2-shard traces byte-identical, "
      f"count {m1['global_count']}")
EOF

# Lazy-decode smoke: the decode strategy is a throughput knob, never a
# semantics knob (DESIGN.md §9) — an --eager-decode run of the same
# scenario must emit a byte-identical event trace to the default (lazy)
# 1-shard run above, and the decode counters must reconcile exactly.
echo "+ vcount run scen.json --eager-decode --trace ... (byte-diff vs lazy)"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution --shards 1 --eager-decode \
    --trace "$shard_dir/eager.jsonl" > "$shard_dir/meager.json"
run cmp "$shard_dir/s1.jsonl" "$shard_dir/eager.jsonl"
run python3 - "$shard_dir" <<'EOF'
import json, sys
d = sys.argv[1]
lazy = json.load(open(f"{d}/m1.json"))
eager = json.load(open(f"{d}/meager.json"))
lt, et = lazy["telemetry"], eager["telemetry"]
assert lazy["global_count"] == eager["global_count"]
assert et["messages_skipped_decode"] == 0, et
assert et["messages_decoded"] == lt["messages_decoded"] + lt["messages_skipped_decode"], (lt, et)
print(f"lazy-decode smoke ok: traces byte-identical, eager decoded "
      f"{et['messages_decoded']} = lazy {lt['messages_decoded']} "
      f"+ skipped {lt['messages_skipped_decode']}")
EOF

# Fault-injection smoke: a run under a crash+blackout+chaos plan must end
# exact or explicitly degraded (never a silent miscount), and the crash
# must actually fire (DESIGN.md §7).
fault_dir="$tmp_root/faults"
mkdir "$fault_dir"
cat > "$fault_dir/plan.json" <<'EOF'
{
  "seed": 7,
  "crashes":   [{ "node": 1, "at_s": 120.0, "recover_s": 300.0 }],
  "blackouts": [{ "nodes": [2], "from_s": 60.0, "until_s": 180.0 }],
  "chaos": { "from_s": 0.0, "until_s": 240.0, "duplicate_p": 0.2,
             "delay_p": 0.2, "max_delay_s": 10.0, "reorder_p": 0.1 },
  "image_every_s": 60.0
}
EOF
run cargo run --release -q -p vcount-cli --bin vcount -- \
    scenario --preset fig1 --rng 5 --out "$fault_dir/scen.json"
# Redirect inside the command, not around the `run` wrapper — its echo
# line must not end up in the JSON.
echo "+ vcount run scen.json --faults plan.json > metrics.json"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$fault_dir/scen.json" --faults "$fault_dir/plan.json" \
    > "$fault_dir/metrics.json"
run python3 - "$fault_dir/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["degraded"] or (
    m["oracle_violations"] == 0 and m["global_count"] == m["true_population"]
), f"SILENT miscount: {m['global_count']} vs {m['true_population']}, not degraded"
assert m["telemetry"]["crashes"] >= 1, "scheduled crash never fired"
print(f"fault smoke ok: degraded={m['degraded']} "
      f"crashes={m['telemetry']['crashes']} "
      f"dropped={m['telemetry']['fault_messages_dropped']} "
      f"blackouts={m['telemetry']['blackout_failures']}")
EOF

# Record → replay smoke: record the same faulty run's action trace, then
# re-drive the pure protocol machines only (no simulator) and require
# byte-identical dispatches and final counts (DESIGN.md §8).
echo "+ vcount run scen.json --faults plan.json --record-actions trace.json > /dev/null"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$fault_dir/scen.json" --faults "$fault_dir/plan.json" \
    --record-actions "$fault_dir/trace.json" >/dev/null
echo "+ vcount replay trace.json > replay.json"
cargo run --release -q -p vcount-cli --bin vcount -- \
    replay "$fault_dir/trace.json" > "$fault_dir/replay.json"
run python3 - "$fault_dir/replay.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["digests_match"] and r["counts_match"], r
print(f"record/replay smoke ok: {r['actions']} actions, "
      f"digest {r['recorded_digest']:#018x} reproduced machine-only")
EOF

# Sweep fault axis: one cell with the same plan; every cell must report
# the degraded-replicate count.
run cargo run --release -q -p vcount-cli --bin vcount -- \
    sweep --volumes 60 --seed-counts 2 --replicates 1 \
    --faults "$fault_dir/plan.json" --out "$fault_dir/sweep.json"
run python3 - "$fault_dir/sweep.json" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))
assert cells and all("degraded" in c for c in cells), "sweep cells lack degraded counts"
print(f"sweep fault axis ok: {len(cells)} cell(s), "
      f"degraded replicates {[c['degraded'] for c in cells]}")
EOF

# Serve smoke: transport is a deployment knob, never a semantics knob
# (DESIGN.md §10) — a scenario driven through `vcount serve` by a
# simulator-fed client must return the byte-identical event trace that
# `vcount run --trace` writes, and an over-rate feed against a tiny
# queue must get an explicit Throttled response (never a silent drop).
serve_dir="$tmp_root/serve"
mkdir "$serve_dir"
echo "+ vcount run|feed|serve on scen.json (byte-diff event traces)"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution \
    --trace "$serve_dir/batch.jsonl" > "$serve_dir/mbatch.json"
cargo run --release -q -p vcount-cli --bin vcount -- \
    feed "$snap_dir/scen.json" --goal constitution \
    --emit "$serve_dir/cmds.jsonl" \
    --trace "$serve_dir/feed.jsonl" > "$serve_dir/mfeed.json"
run cmp "$serve_dir/batch.jsonl" "$serve_dir/feed.jsonl"
echo "+ vcount serve < cmds.jsonl (stdin-transport replay, byte-diff)"
cargo run --release -q -p vcount-cli --bin vcount -- \
    serve < "$serve_dir/cmds.jsonl" > "$serve_dir/responses.jsonl"
run python3 - "$serve_dir" <<'EOF'
import json, sys
d = sys.argv[1]
batch = open(f"{d}/batch.jsonl", "rb").read()
lines = []
throttled = 0
for raw in open(f"{d}/responses.jsonl", encoding="utf-8"):
    resp = json.loads(raw)
    if "Event" in resp:
        lines.append(resp["Event"]["line"])
    elif "Throttled" in resp:
        throttled += 1
    assert "Error" not in resp, resp
replay = ("\n".join(lines) + "\n").encode() if lines else b""
assert replay == batch, "stdin-transport replay diverged from vcount run --trace"
assert throttled == 0, "default queue must absorb a single-tenant feed"
mb = json.load(open(f"{d}/mbatch.json"))
mf = json.load(open(f"{d}/mfeed.json"))
assert mb["global_count"] == mf["global_count"], (mb["global_count"], mf["global_count"])
assert mf["oracle_violations"] == 0
print(f"serve smoke ok: {len(lines)} event lines byte-identical across "
      f"run/feed/serve, count {mf['global_count']}")
EOF
# Over-rate feed: replay the same command stream with ingest made fully
# manual (--pump-budget 0) against a 2-batch queue; with no Pump requests
# in the stream, the queue must fill and every further batch must be
# answered Throttled.
echo "+ vcount serve --queue-capacity 2 --pump-budget 0 < cmds.jsonl (backpressure)"
cargo run --release -q -p vcount-cli --bin vcount -- \
    serve --queue-capacity 2 --pump-budget 0 < "$serve_dir/cmds.jsonl" \
    > "$serve_dir/throttled.jsonl"
run python3 - "$serve_dir/throttled.jsonl" <<'EOF'
import json, sys
accepted = throttled = 0
for raw in open(sys.argv[1], encoding="utf-8"):
    resp = json.loads(raw)
    if "Accepted" in resp:
        accepted += 1
        assert resp["Accepted"]["queued"] <= 2, resp
    elif "Throttled" in resp:
        throttled += 1
        assert resp["Throttled"] == {"run": "run-1", "queued": 2, "capacity": 2}, resp
assert accepted == 2, f"exactly the queue capacity is accepted, got {accepted}"
assert throttled > 0, "over-rate feed was never throttled"
print(f"backpressure smoke ok: {accepted} accepted, {throttled} explicit Throttled")
EOF

# Malformed-line smoke: the wire is a trust boundary (DESIGN.md §10) — a
# garbage line, a Start that would panic engine assembly (out-of-range
# seed node), and an Observe failing batch validation (out-of-range node
# id) must each get an explicit Error response, and the good tenant fed
# by the very same stream must still produce the byte-identical trace.
echo "+ vcount serve < poisoned cmds.jsonl (trust-boundary errors, byte-diff good run)"
run python3 - "$serve_dir" <<'EOF'
import json, sys
d = sys.argv[1]
good = open(f"{d}/cmds.jsonl", encoding="utf-8").read().splitlines()
start = json.loads(good[0])
assert "Start" in start, "first recorded command is the Start"
hostile = json.loads(good[0])
hostile["Start"]["run"] = "adv"
hostile["Start"]["scenario"]["seeds"] = {"Explicit": [9999]}

def poison_nodes(v):
    if isinstance(v, dict):
        return {k: (4294967295 if k == "node" else poison_nodes(x)) for k, x in v.items()}
    if isinstance(v, list):
        return [poison_nodes(x) for x in v]
    return v

out = ["this is not json", json.dumps(hostile)]
poisoned = False
for line in good:
    cmd = json.loads(line)
    if not poisoned and "Observe" in cmd and cmd["Observe"]["batch"]["events"]:
        out.append(json.dumps(poison_nodes(cmd)))
        poisoned = True
    out.append(line)
assert poisoned, "recorded stream has no Observe with events to poison"
open(f"{d}/poisoned.jsonl", "w", encoding="utf-8").write("\n".join(out) + "\n")
EOF
# stderr holds the contained panic's backtrace (the default hook prints
# it even under catch_unwind) — expected noise, kept out of the CI log.
cargo run --release -q -p vcount-cli --bin vcount -- \
    serve < "$serve_dir/poisoned.jsonl" > "$serve_dir/poisoned_responses.jsonl" \
    2> "$serve_dir/poisoned_stderr.log"
run python3 - "$serve_dir" <<'EOF'
import json, sys
d = sys.argv[1]
batch = open(f"{d}/batch.jsonl", "rb").read()
lines, errors = [], []
for raw in open(f"{d}/poisoned_responses.jsonl", encoding="utf-8"):
    resp = json.loads(raw)
    if "Event" in resp:
        lines.append(resp["Event"]["line"])
    elif "Error" in resp:
        errors.append(resp["Error"])
replay = ("\n".join(lines) + "\n").encode() if lines else b""
assert replay == batch, "poison lines perturbed the good tenant's stream"
msgs = [e["message"] for e in errors]
assert any("malformed request" in m for m in msgs), msgs
assert any("start failed" in m for m in msgs), msgs
assert any("malformed batch" in m for m in msgs), msgs
print(f"malformed-line smoke ok: {len(errors)} explicit Errors, "
      f"good stream byte-identical ({len(lines)} events)")
EOF

# Concurrent-feeders smoke: one daemon, two tenants over the Unix socket
# at once — each feeder's returned trace must be byte-identical to its
# own solo `vcount run --trace`, and the daemon must remove its socket
# file on exit (DESIGN.md §10).
echo "+ vcount serve --socket --max-conns 2 & two concurrent feeds (byte-diff)"
run cargo run --release -q -p vcount-cli --bin vcount -- \
    scenario --preset closed --volume 40 --seeds 2 --rng 10 --out "$serve_dir/scen_b.json"
cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$serve_dir/scen_b.json" --goal constitution \
    --trace "$serve_dir/batch_b.jsonl" > "$serve_dir/mbatch_b.json"
vcountd_sock="$serve_dir/vcountd.sock"
cargo run --release -q -p vcount-cli --bin vcount -- \
    serve --socket "$vcountd_sock" --max-conns 2 2>/dev/null &
serve_pid=$!
for _ in $(seq 100); do
    [ -S "$vcountd_sock" ] && break
    sleep 0.1
done
[ -S "$vcountd_sock" ] || { echo "daemon never bound $vcountd_sock" >&2; exit 1; }
cargo run --release -q -p vcount-cli --bin vcount -- \
    feed "$snap_dir/scen.json" --goal constitution --run a \
    --socket "$vcountd_sock" --trace "$serve_dir/feed_a.jsonl" \
    > "$serve_dir/mfeed_a.json" &
feed_a_pid=$!
cargo run --release -q -p vcount-cli --bin vcount -- \
    feed "$serve_dir/scen_b.json" --goal constitution --run b \
    --socket "$vcountd_sock" --trace "$serve_dir/feed_b.jsonl" \
    > "$serve_dir/mfeed_b.json" &
feed_b_pid=$!
wait "$feed_a_pid"
wait "$feed_b_pid"
wait "$serve_pid"
run cmp "$serve_dir/batch.jsonl" "$serve_dir/feed_a.jsonl"
run cmp "$serve_dir/batch_b.jsonl" "$serve_dir/feed_b.jsonl"
if [ -e "$vcountd_sock" ]; then
    echo "daemon exited without removing $vcountd_sock" >&2
    exit 1
fi
run python3 - "$serve_dir" <<'EOF'
import json, sys
d = sys.argv[1]
for tag in ("a", "b"):
    ref = json.load(open(f"{d}/mbatch.json" if tag == "a" else f"{d}/mbatch_b.json"))
    fed = json.load(open(f"{d}/mfeed_{tag}.json"))
    assert fed["global_count"] == ref["global_count"], (tag, fed["global_count"])
    assert fed["oracle_violations"] == 0, (tag, fed)
print("concurrent-feeders smoke ok: both tenants byte-identical to solo runs, "
      "socket file cleaned up")
EOF

# Bench smoke: the hotpath bin must run end to end, emit well-formed JSON,
# and stay within 5% of the committed throughput baseline — both
# steps/sec and events/sec per case (tiny grid, a few hundred steps —
# seconds, not minutes; regressions re-measure at the committed length
# before failing). The high-fanout relay case must be present: it is the
# message-plane guard, where events/sec is dominated by wire traffic.
smoke_out="$tmp_root/bench_smoke.json"
run cargo run --release -q -p vcount-bench --bin hotpath -- --smoke --out "$smoke_out" \
    --guard BENCH_hotpath.json --tolerance 0.05
if command -v jq >/dev/null 2>&1; then
    run jq -e '.schema == "vcount-hotpath-bench/v1" and (.cases | length) > 0 and all(.cases[]; .steps_per_sec > 0 and .events_per_sec > 0) and any(.cases[]; .name | startswith("fanout_"))' "$smoke_out" >/dev/null
else
    run python3 - "$smoke_out" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "vcount-hotpath-bench/v1", r["schema"]
assert r["cases"] and all(c["steps_per_sec"] > 0 and c["events_per_sec"] > 0 for c in r["cases"])
assert any(c["name"].startswith("fanout_") for c in r["cases"]), "high-fanout case missing"
EOF
fi
echo "All checks passed."
