#!/usr/bin/env bash
# CI-equivalent checks: build, tests, clippy, fmt.
#
# The committed .cargo/config.toml patches every external dependency to the
# offline stubs under devtools/stubs/ (this container cannot reach the
# crates.io registry). On a networked machine, delete that file to build and
# test against the real crates — the commands below work either way.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "+ $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --all --check

# Bench smoke: the hotpath bin must run end to end and emit well-formed
# JSON (tiny grid, a few hundred steps — seconds, not minutes).
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_out"' EXIT
run cargo run --release -q -p vcount-bench --bin hotpath -- --smoke --out "$smoke_out"
if command -v jq >/dev/null 2>&1; then
    run jq -e '.schema == "vcount-hotpath-bench/v1" and (.cases | length) > 0 and all(.cases[]; .steps_per_sec > 0)' "$smoke_out" >/dev/null
else
    run python3 - "$smoke_out" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "vcount-hotpath-bench/v1", r["schema"]
assert r["cases"] and all(c["steps_per_sec"] > 0 for c in r["cases"])
EOF
fi
echo "All checks passed."
