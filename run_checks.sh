#!/usr/bin/env bash
# CI-equivalent checks: build, tests, clippy, fmt.
#
# The committed .cargo/config.toml patches every external dependency to the
# offline stubs under devtools/stubs/ (this container cannot reach the
# crates.io registry). On a networked machine, delete that file to build and
# test against the real crates — the commands below work either way.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "+ $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --all --check

# Docs must build clean: every public item is documented, every intra-doc
# link resolves, and cargo itself emits no warnings (e.g. doc-path
# collisions, which -D warnings alone would not catch).
echo "+ cargo doc --workspace --no-deps (zero warnings required)"
doc_log="$(mktemp /tmp/doc_log.XXXXXX)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps 2>"$doc_log" || {
    cat "$doc_log"
    rm -f "$doc_log"
    echo "cargo doc failed (warnings are errors)" >&2
    exit 1
}
if grep -q "^warning" "$doc_log"; then
    cat "$doc_log"
    rm -f "$doc_log"
    echo "cargo doc emitted warnings" >&2
    exit 1
fi
rm -f "$doc_log"

# Snapshot → resume smoke: on a tiny grid, a run interrupted by a snapshot
# and resumed must emit the byte-identical tail of the uninterrupted run's
# event trace (the per-variant digest test lives in crates/sim/tests/).
snap_dir="$(mktemp -d /tmp/vcount_snap.XXXXXX)"
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
trap 'rm -rf "$snap_dir" "$smoke_out"' EXIT
run cargo run --release -q -p vcount-cli --bin vcount -- \
    scenario --preset closed --volume 40 --seeds 2 --rng 9 --out "$snap_dir/scen.json"
run cargo run --release -q -p vcount-cli --bin vcount -- \
    run "$snap_dir/scen.json" --goal constitution \
    --snapshot-every 50 --snapshot-out "$snap_dir/snap.json" \
    --trace "$snap_dir/full.jsonl" >/dev/null
run cargo run --release -q -p vcount-cli --bin vcount -- \
    run --resume "$snap_dir/snap.json" --goal constitution \
    --trace "$snap_dir/tail.jsonl" >/dev/null
run python3 - "$snap_dir" <<'EOF'
import sys
d = sys.argv[1]
full = open(f"{d}/full.jsonl", "rb").read()
tail = open(f"{d}/tail.jsonl", "rb").read()
assert tail and full.endswith(tail), \
    "resumed trace is not a byte-identical suffix of the uninterrupted trace"
print(f"snapshot/resume smoke ok: {len(tail)} byte tail of {len(full)} byte trace")
EOF

# Bench smoke: the hotpath bin must run end to end, emit well-formed JSON,
# and stay within 5% of the committed throughput baseline (tiny grid, a
# few hundred steps — seconds, not minutes; regressions re-measure at the
# committed length before failing).
run cargo run --release -q -p vcount-bench --bin hotpath -- --smoke --out "$smoke_out" \
    --guard BENCH_hotpath.json --tolerance 0.05
if command -v jq >/dev/null 2>&1; then
    run jq -e '.schema == "vcount-hotpath-bench/v1" and (.cases | length) > 0 and all(.cases[]; .steps_per_sec > 0)' "$smoke_out" >/dev/null
else
    run python3 - "$smoke_out" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "vcount-hotpath-bench/v1", r["schema"]
assert r["cases"] and all(c["steps_per_sec"] > 0 for c in r["cases"])
EOF
fi
echo "All checks passed."
